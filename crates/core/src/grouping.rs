//! Stream partitioning: `GROUP-BY` attributes + equivalence predicates
//! (paper §6). Each partition maintains its own GRETA graphs; final
//! aggregates are reported per **group** (the `GROUP-BY` projection of the
//! partition key).

use crate::EngineError;
use greta_query::CompiledQuery;
use greta_types::codec::{put_u32, put_u64};
use greta_types::{AttrId, CodecError, Event, Reader, SchemaRegistry, TypeId, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// A partition / group key: attribute values in `partition_attrs` order.
/// `None` marks an attribute the event's type does not carry (sub-key
/// semantics for negative-pattern types, e.g. `Accident` lacking `vehicle`
/// in query Q3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PartitionKey(pub Vec<Option<Value>>);

impl PartialOrd for PartitionKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PartitionKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let ord = match (a, b) {
                (None, None) => Ordering::Equal,
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (Some(x), Some(y)) => x.total_cmp(y),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartitionKey {
    /// True when `self` (a sub-key) matches `other` on every attribute both
    /// define.
    pub fn matches(&self, other: &PartitionKey) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Project onto the first `n` attributes (the `GROUP-BY` prefix).
    pub fn group_prefix(&self, n: usize) -> PartitionKey {
        PartitionKey(self.0.iter().take(n).cloned().collect())
    }

    /// Render as a display string (`sector=Tech, company=IBM`).
    pub fn display_with(&self, attrs: &[String]) -> String {
        if self.0.is_empty() {
            return String::from("()");
        }
        let parts: Vec<String> = self
            .0
            .iter()
            .zip(attrs.iter())
            .map(|(v, a)| match v {
                Some(v) => format!("{a}={v}"),
                None => format!("{a}=*"),
            })
            .collect();
        parts.join(", ")
    }

    /// Approximate heap size (memory accounting).
    pub fn heap_size(&self) -> usize {
        self.0.len() * std::mem::size_of::<Option<Value>>()
            + self
                .0
                .iter()
                .flatten()
                .map(|v| match v {
                    Value::Str(s) => s.len(),
                    _ => 0,
                })
                .sum::<usize>()
    }
}

/// Pre-resolved partition-attribute lookup: for each event type, the
/// attribute index of every partition attribute (or `None` if the type
/// lacks it). The table is dense by `TypeId` — schema names are resolved
/// **once** at plan time, and the per-event lookup is an array index, not
/// a hash (compiled attribute accessors).
#[derive(Debug, Clone, Default)]
pub struct KeyExtractor {
    /// `TypeId.0` → attribute slots; `None` for types outside the query.
    per_type: Vec<Option<Box<[Option<AttrId>]>>>,
    n_attrs: usize,
}

impl KeyExtractor {
    /// Build the extractor for a compiled query: resolves every partition
    /// attribute on every event type appearing in any graph.
    pub fn new(query: &CompiledQuery, reg: &SchemaRegistry) -> KeyExtractor {
        let mut per_type: Vec<Option<Box<[Option<AttrId>]>>> = Vec::new();
        for alt in &query.alternatives {
            for g in &alt.graphs {
                for (_, tid) in &g.state_types {
                    let ti = tid.0 as usize;
                    if per_type.len() <= ti {
                        per_type.resize(ti + 1, None);
                    }
                    if per_type[ti].is_none() {
                        let schema = reg.schema(*tid);
                        per_type[ti] = Some(
                            query
                                .partition_attrs
                                .iter()
                                .map(|a| schema.attr(a))
                                .collect(),
                        );
                    }
                }
            }
        }
        KeyExtractor {
            per_type,
            n_attrs: query.partition_attrs.len(),
        }
    }

    /// Resolved attribute slots of a type, if it appears in the query.
    #[inline]
    fn slots_of(&self, ty: TypeId) -> Option<&[Option<AttrId>]> {
        self.per_type.get(ty.0 as usize).and_then(|s| s.as_deref())
    }

    /// Extract the (sub-)key of an event.
    pub fn key_of(&self, e: &Event) -> PartitionKey {
        match self.slots_of(e.type_id) {
            Some(slots) => {
                PartitionKey(slots.iter().map(|s| s.map(|a| e.attr(a).clone())).collect())
            }
            None => PartitionKey(vec![None; self.n_attrs]),
        }
    }

    /// Extract only the leading `n` attributes of the (sub-)key (the
    /// `GROUP-BY` prefix) without materializing the full key.
    pub fn key_prefix_of(&self, e: &Event, n: usize) -> PartitionKey {
        match self.slots_of(e.type_id) {
            Some(slots) => PartitionKey(
                slots
                    .iter()
                    .take(n)
                    .map(|s| s.map(|a| e.attr(a).clone()))
                    .collect(),
            ),
            None => PartitionKey(vec![None; self.n_attrs.min(n)]),
        }
    }

    /// True when the event's type carries **all** partition attributes
    /// (complete key ⇒ the event belongs to exactly one partition).
    pub fn has_full_key(&self, ty: TypeId) -> bool {
        self.slots_of(ty)
            .is_none_or(|slots| slots.iter().all(Option::is_some))
    }

    /// Number of partition attributes.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }
}

/// Feed one group-key slot (present value or sub-key hole) into the
/// routing hash. The single definition both [`group_key_hash`] (off a
/// materialized key) and [`StreamRouting::group_hash`] (straight off an
/// event) encode through — they can never drift apart.
#[inline]
fn hash_group_slot(h: &mut DefaultHasher, v: Option<&Value>) {
    match v {
        Some(v) => {
            h.write_u8(1);
            v.hash(h);
        }
        None => h.write_u8(0),
    }
}

/// The deterministic 64-bit hash of a materialized group key. This is the
/// *routing hash*: [`StreamRouting::group_hash`] produces bit-identical
/// values straight off an event (no key materialization), and both the
/// static shard assignment and [`RoutingTable`] override lookups key on
/// it, so the hot routing path never has to allocate a [`PartitionKey`].
// lint:hot-path
pub fn group_key_hash(key: &PartitionKey) -> u64 {
    let mut h = DefaultHasher::new();
    for v in &key.0 {
        hash_group_slot(&mut h, v.as_ref());
    }
    h.finish()
}

/// The static (fallback) shard assignment of a routing hash: the
/// deterministic `hash % shards` every group without a [`RoutingTable`]
/// pin routes by. Single definition shared by the event router, the
/// rebalance planner, and state repartitioning — they can never drift.
#[inline]
// lint:hot-path
pub fn shard_of_hash(h: u64, shards: usize) -> usize {
    (h % shards.max(1) as u64) as usize
}

/// A versioned group → shard routing table (one *routing epoch*).
///
/// The default table is empty: every group falls back to the deterministic
/// hash ([`StreamRouting::shard_of_group_key`]), which is the static
/// assignment the paper's parallel evaluation (§10.4) assumes. When the
/// executor's skew detector migrates hot groups, it installs explicit
/// per-group overrides and bumps the epoch; events of groups without an
/// override keep hashing. Epochs only grow — a snapshot taken under epoch
/// `e` can never be confused with state from an earlier assignment.
///
/// Lookups go through the group's [routing hash](group_key_hash), so the
/// executor can resolve an event's shard without materializing its key
/// (`by_hash` is rebuilt from `overrides` on every install/decode — the
/// two can never drift).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTable {
    epoch: u64,
    overrides: HashMap<PartitionKey, u32>,
    /// `group_key_hash(key)` → shard, derived from `overrides`.
    by_hash: HashMap<u64, u32>,
}

impl RoutingTable {
    /// Routing-table version: 0 until the first install, then monotone.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of groups with an explicit (non-hash) assignment.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// True when every group still routes by hash.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Explicit shard of `group`, if the table pins one. Resolved through
    /// the group's routing hash, identically to
    /// [`shard_for_hash`](Self::shard_for_hash) — every lookup path sees
    /// the same assignment.
    pub fn shard_for(&self, group: &PartitionKey) -> Option<usize> {
        self.shard_for_hash(group_key_hash(group))
    }

    /// Explicit shard pinned for the group with routing hash `h`, if any —
    /// the allocation-free lookup the executor's hot path uses with a hash
    /// computed straight off the event.
    #[inline]
    pub fn shard_for_hash(&self, h: u64) -> Option<usize> {
        self.by_hash.get(&h).map(|&s| s as usize)
    }

    /// Replace the overrides and advance the epoch. Returns the new epoch.
    pub fn install(&mut self, overrides: HashMap<PartitionKey, u32>) -> u64 {
        self.by_hash = overrides
            .iter()
            .map(|(k, &s)| (group_key_hash(k), s))
            .collect();
        self.overrides = overrides;
        self.epoch += 1;
        self.epoch
    }

    /// Drop every override (back to pure hashing) and advance the epoch —
    /// used when recovery repartitions a snapshot onto a different shard
    /// count, where the old pinned assignment is meaningless.
    pub fn reset_for_shards(&mut self) -> u64 {
        self.overrides.clear();
        self.by_hash.clear();
        self.epoch += 1;
        self.epoch
    }

    /// Append the binary encoding (`epoch`, override count, `key → shard`
    /// pairs sorted by key for a deterministic blob).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.epoch);
        let mut keys: Vec<&PartitionKey> = self.overrides.keys().collect();
        keys.sort();
        put_u32(out, keys.len() as u32);
        for k in keys {
            crate::state::encode_key(k, out);
            put_u32(out, self.overrides[k]);
        }
    }

    /// Decode a table encoded by [`RoutingTable::encode`], rejecting shard
    /// indices outside `0..shards`.
    pub fn decode(r: &mut Reader<'_>, shards: usize) -> Result<RoutingTable, CodecError> {
        let epoch = r.u64()?;
        let n = r.seq_len(8)?;
        let mut overrides = HashMap::with_capacity(n);
        for _ in 0..n {
            let key = crate::state::decode_key(r)?;
            let shard = r.u32()?;
            if shard as usize >= shards {
                return Err(CodecError(format!(
                    "routing table pins a group to shard {shard}, but only {shards} exist"
                )));
            }
            overrides.insert(key, shard);
        }
        let by_hash = overrides
            .iter()
            .map(|(k, &s)| (group_key_hash(k), s))
            .collect();
        Ok(RoutingTable {
            epoch,
            overrides,
            by_hash,
        })
    }
}

/// Unified routing view of a compiled query, shared by [`GretaEngine`]
/// (partition creation/broadcast), [`run_parallel`] and the
/// [`StreamExecutor`] so all layers classify events identically:
///
/// * **root types** appear in the root (positive) graph and carry the full
///   partition key — each such event belongs to exactly one partition and,
///   under sharding, exactly one shard;
/// * **broadcast types** appear only outside the root graph *or* carry a
///   sub-key (negative-pattern types such as `Accident` in Q3) — they must
///   be delivered to every matching partition, hence to every shard.
///
/// [`GretaEngine`]: crate::GretaEngine
/// [`run_parallel`]: crate::parallel::run_parallel
/// [`StreamExecutor`]: crate::executor::StreamExecutor
#[derive(Debug, Clone)]
pub struct StreamRouting {
    extractor: KeyExtractor,
    /// Dense by `TypeId`: the per-event classification is an array index.
    root_types: Vec<bool>,
    broadcast_types: Vec<bool>,
    n_group: usize,
}

impl StreamRouting {
    /// Classify every event type of `query`.
    pub fn new(query: &CompiledQuery, registry: &SchemaRegistry) -> StreamRouting {
        let extractor = KeyExtractor::new(query, registry);
        let mut root_types = HashSet::new();
        let mut all_types = HashSet::new();
        for alt in &query.alternatives {
            for (_, tid) in &alt.graphs[0].state_types {
                root_types.insert(*tid);
            }
            for g in &alt.graphs {
                for (_, tid) in &g.state_types {
                    all_types.insert(*tid);
                }
            }
        }
        let max_ty = all_types
            .iter()
            .map(|t| t.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut root = vec![false; max_ty];
        let mut broadcast = vec![false; max_ty];
        for t in &root_types {
            root[t.0 as usize] = true;
        }
        for t in all_types {
            if !root_types.contains(&t) || !extractor.has_full_key(t) {
                broadcast[t.0 as usize] = true;
            }
        }
        StreamRouting {
            extractor,
            root_types: root,
            broadcast_types: broadcast,
            n_group: query.group_by.len(),
        }
    }

    /// Check the §6 partitioning precondition: every root-graph event type
    /// must carry the full partition key (its partition must be
    /// unambiguous).
    pub fn validate(
        &self,
        query: &CompiledQuery,
        registry: &SchemaRegistry,
    ) -> Result<(), EngineError> {
        for (i, is_root) in self.root_types.iter().enumerate() {
            let tid = TypeId(i as u16);
            if *is_root && !self.extractor.has_full_key(tid) {
                let schema = registry.schema(tid);
                let missing = query
                    .partition_attrs
                    .iter()
                    .find(|a| schema.attr(a).is_none())
                    .cloned()
                    .unwrap_or_default();
                return Err(EngineError::PartitionAttr {
                    attr: missing,
                    ty: schema.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// The partition-key extractor.
    pub fn extractor(&self) -> &KeyExtractor {
        &self.extractor
    }

    /// True for root-graph types carrying the full key.
    pub fn is_root(&self, ty: TypeId) -> bool {
        let i = ty.0 as usize;
        self.root_types.get(i).copied().unwrap_or(false)
            && !self.broadcast_types.get(i).copied().unwrap_or(false)
    }

    /// True for types that must reach every shard.
    pub fn is_broadcast(&self, ty: TypeId) -> bool {
        self.broadcast_types
            .get(ty.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The event's `GROUP-BY` projection of the partition key.
    pub fn group_key(&self, e: &Event) -> PartitionKey {
        self.extractor.key_prefix_of(e, self.n_group)
    }

    /// Routing hash of the event's `GROUP-BY` group, computed straight off
    /// the event — bit-identical to [`group_key_hash`] of the materialized
    /// [`group_key`](Self::group_key), with no allocation. This one value
    /// drives the static shard assignment (`hash % shards`), the
    /// [`RoutingTable`] override lookup, and the skew detector's per-group
    /// counters.
    // lint:hot-path
    pub fn group_hash(&self, e: &Event) -> u64 {
        let mut h = DefaultHasher::new();
        match self.extractor.slots_of(e.type_id) {
            Some(slots) => {
                for s in slots.iter().take(self.n_group) {
                    hash_group_slot(&mut h, s.map(|a| e.attr(a)));
                }
            }
            None => {
                for _ in 0..self.n_group.min(self.extractor.n_attrs) {
                    hash_group_slot(&mut h, None);
                }
            }
        }
        h.finish()
    }

    /// Shard owning the event's group, or `None` when the event must be
    /// broadcast. Deterministic for a given key and shard count, so the
    /// same stream always shards identically. The group values are hashed
    /// straight out of the event — no key is materialized per event.
    // lint:hot-path
    pub fn shard_of(&self, e: &Event, shards: usize) -> Option<usize> {
        if self.is_broadcast(e.type_id) {
            return None;
        }
        Some(shard_of_hash(self.group_hash(e), shards))
    }

    /// Hash a *materialized* group key to a shard, bit-identical to the
    /// off-event path of [`shard_of`](Self::shard_of): a key produced by
    /// [`group_key`](Self::group_key) lands on the same shard whichever
    /// entry point hashed it. This is the fallback assignment for groups a
    /// [`RoutingTable`] does not pin.
    // lint:hot-path
    pub fn shard_of_group_key(&self, key: &PartitionKey, shards: usize) -> usize {
        shard_of_hash(group_key_hash(key), shards)
    }

    /// True when `other` routes every event exactly like `self`: the same
    /// broadcast classification per event type and the same `GROUP-BY`
    /// attribute slots (so [`group_hash`](Self::group_hash) agrees on every
    /// event). Queries whose routings agree this way can share one routed
    /// event plane — and one [`RoutingTable`] — inside a multi-query
    /// executor: each event is classified and hashed once for the whole
    /// set.
    pub fn routes_like(&self, other: &StreamRouting) -> bool {
        self.n_group == other.n_group
            && self.root_types == other.root_types
            && self.broadcast_types == other.broadcast_types
            && self.extractor.n_attrs == other.extractor.n_attrs
            && self.extractor.per_type == other.extractor.per_type
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_query::CompiledQuery;
    use greta_types::{EventBuilder, SchemaRegistry};

    fn q3_setup() -> (SchemaRegistry, CompiledQuery) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment", "speed"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident A, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 300 SLIDE 60",
            &reg,
        )
        .unwrap();
        (reg, q)
    }

    #[test]
    fn full_and_partial_keys() {
        let (reg, q) = q3_setup();
        let ex = KeyExtractor::new(&q, &reg);
        assert_eq!(q.partition_attrs, vec!["segment", "vehicle"]);

        let p = EventBuilder::new(&reg, "Position")
            .unwrap()
            .set("vehicle", 7)
            .unwrap()
            .set("segment", 3)
            .unwrap()
            .build();
        let key = ex.key_of(&p);
        assert_eq!(
            key,
            PartitionKey(vec![Some(Value::Int(3)), Some(Value::Int(7))])
        );
        assert!(ex.has_full_key(p.type_id));

        let a = EventBuilder::new(&reg, "Accident")
            .unwrap()
            .set("segment", 3)
            .unwrap()
            .build();
        let akey = ex.key_of(&a);
        assert_eq!(akey, PartitionKey(vec![Some(Value::Int(3)), None]));
        assert!(!ex.has_full_key(a.type_id));
        // The accident's sub-key matches the position's partition.
        assert!(akey.matches(&key));
    }

    #[test]
    fn subkey_matching() {
        let a = PartitionKey(vec![Some(Value::Int(1)), None]);
        let b = PartitionKey(vec![Some(Value::Int(1)), Some(Value::Int(2))]);
        let c = PartitionKey(vec![Some(Value::Int(9)), Some(Value::Int(2))]);
        assert!(a.matches(&b));
        assert!(b.matches(&a));
        assert!(!b.matches(&c));
        assert!(!a.matches(&c));
    }

    #[test]
    fn group_prefix_projection() {
        let k = PartitionKey(vec![
            Some(Value::Int(1)),
            Some(Value::Int(2)),
            Some(Value::Int(3)),
        ]);
        assert_eq!(k.group_prefix(1), PartitionKey(vec![Some(Value::Int(1))]));
        assert_eq!(k.group_prefix(0), PartitionKey(vec![]));
    }

    #[test]
    fn display() {
        let k = PartitionKey(vec![Some(Value::from("Tech")), None]);
        assert_eq!(
            k.display_with(&["sector".into(), "company".into()]),
            "sector=Tech, company=*"
        );
        assert_eq!(PartitionKey::default().display_with(&[]), "()");
    }

    #[test]
    fn routing_classifies_and_shards_deterministically() {
        let (reg, q) = q3_setup();
        let routing = StreamRouting::new(&q, &reg);
        routing.validate(&q, &reg).unwrap();
        let acc_id = reg.type_id("Accident").unwrap();
        let pos_id = reg.type_id("Position").unwrap();
        assert!(routing.is_broadcast(acc_id));
        assert!(!routing.is_root(acc_id));
        assert!(routing.is_root(pos_id));
        let p = EventBuilder::new(&reg, "Position")
            .unwrap()
            .set("vehicle", 7)
            .unwrap()
            .set("segment", 3)
            .unwrap()
            .build();
        let a = EventBuilder::new(&reg, "Accident")
            .unwrap()
            .set("segment", 3)
            .unwrap()
            .build();
        assert_eq!(routing.shard_of(&a, 4), None); // broadcast
        let s = routing.shard_of(&p, 4).unwrap();
        assert!(s < 4);
        // Deterministic: same event, same shard, every time.
        for _ in 0..10 {
            assert_eq!(routing.shard_of(&p, 4), Some(s));
        }
        // GROUP-BY projection keeps only the leading `segment`.
        assert_eq!(routing.group_key(&p).0.len(), 1);
    }

    #[test]
    fn materialized_group_key_hashes_to_same_shard_as_event() {
        let (reg, q) = q3_setup();
        let routing = StreamRouting::new(&q, &reg);
        for (vehicle, segment) in [(1, 1), (7, 3), (200, 15), (0, 0)] {
            let p = EventBuilder::new(&reg, "Position")
                .unwrap()
                .set("vehicle", vehicle)
                .unwrap()
                .set("segment", segment)
                .unwrap()
                .build();
            for shards in [1usize, 2, 4, 7] {
                assert_eq!(
                    routing.shard_of(&p, shards),
                    Some(routing.shard_of_group_key(&routing.group_key(&p), shards)),
                    "vehicle={vehicle} segment={segment} shards={shards}"
                );
            }
            // The off-event routing hash is bit-identical to hashing the
            // materialized key: counters and table lookups keyed on either
            // can never disagree.
            assert_eq!(
                routing.group_hash(&p),
                group_key_hash(&routing.group_key(&p)),
                "vehicle={vehicle} segment={segment}"
            );
        }
    }

    #[test]
    fn routing_table_overrides_epoch_and_codec() {
        let mut table = RoutingTable::default();
        assert!(table.is_empty());
        assert_eq!(table.epoch(), 0);
        let g = |v: i64| PartitionKey(vec![Some(Value::Int(v))]);
        let mut overrides = HashMap::new();
        overrides.insert(g(1), 3u32);
        overrides.insert(g(2), 0u32);
        assert_eq!(table.install(overrides), 1);
        assert_eq!(table.shard_for(&g(1)), Some(3));
        assert_eq!(table.shard_for(&g(2)), Some(0));
        assert_eq!(table.shard_for(&g(9)), None); // falls back to hash
        assert_eq!(table.len(), 2);
        // Hash-keyed lookups see the same pins as key lookups.
        assert_eq!(table.shard_for_hash(group_key_hash(&g(1))), Some(3));
        assert_eq!(table.shard_for_hash(group_key_hash(&g(9))), None);

        let mut buf = Vec::new();
        table.encode(&mut buf);
        let got = RoutingTable::decode(&mut greta_types::Reader::new(&buf), 4).unwrap();
        assert_eq!(got, table);
        // A pin outside the shard range is rejected.
        assert!(RoutingTable::decode(&mut greta_types::Reader::new(&buf), 3).is_err());

        assert_eq!(table.reset_for_shards(), 2);
        assert!(table.is_empty());
        assert_eq!(table.epoch(), 2);
    }
}
