//! # greta-core
//!
//! The GRETA runtime (paper §4–§8): given a [`greta_query::CompiledQuery`]
//! and an in-order event stream, maintains one GRETA graph per pattern
//! alternative × stream partition, propagates aggregates along graph edges
//! in dynamic-programming fashion, and emits per-window per-group results —
//! **without ever enumerating event trends**.
//!
//! Entry point: [`GretaEngine`].
//!
//! ```
//! use greta_types::{SchemaRegistry, EventBuilder, Time};
//! use greta_query::CompiledQuery;
//! use greta_core::GretaEngine;
//!
//! let mut reg = SchemaRegistry::new();
//! reg.register_type("A", &["attr"]).unwrap();
//! reg.register_type("B", &["attr"]).unwrap();
//! let q = CompiledQuery::parse(
//!     "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100", &reg).unwrap();
//! let mut engine = GretaEngine::<f64>::new(q, reg).unwrap();
//! for (ty, t) in [("A", 1), ("B", 2), ("A", 3), ("A", 4), ("B", 7)] {
//!     let reg = engine.registry().clone();
//!     engine.process(&EventBuilder::new(&reg, ty).unwrap().at(Time(t)).build()).unwrap();
//! }
//! let results = engine.finish();
//! assert_eq!(results[0].values[0].to_f64(), 11.0); // Example 1: 11 trends
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod compose;
pub mod engine;
pub mod error;
pub mod executor;
pub mod graph;
pub mod grouping;
pub mod memory;
pub mod negation;
pub mod parallel;
pub mod protocol_model;
pub mod reorder;
pub mod results;
pub mod semantics;
pub mod sketch;
mod state;
pub mod storage;
pub mod window;

pub use agg::{AggLayout, AggState, TrendNum};
pub use engine::{EngineConfig, EngineStats, GretaEngine};
pub use error::EngineError;
pub use executor::{
    EmissionMode, ExecutorConfig, ExecutorStats, LatePolicy, QueryId, QueryStreamStats,
    RebalanceConfig, StreamExecutor,
};
pub use grouping::{group_key_hash, shard_of_hash, PartitionKey, RoutingTable, StreamRouting};
pub use memory::MemoryFootprint;
pub use reorder::{ReorderBuffer, ResultMerge};
pub use results::{sort_canonical, OutValue, WindowResult};
pub use semantics::Semantics;
pub use sketch::GroupSketch;
pub use window::{window_close_time, windows_of, WindowId};
