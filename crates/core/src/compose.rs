//! Count composition for disjunctive and conjunctive patterns (paper §9).
//!
//! Let `Cij = COUNT(Pij)` (trends matched by both patterns), and
//! `Ci = COUNT(Pi) − Cij`, `Cj = COUNT(Pj) − Cij` the exclusive counts:
//!
//! * **Disjunction**: `COUNT(Pi ∨ Pj) = Ci + Cj + Cij`
//!   (equivalently `COUNT(Pi) + COUNT(Pj) − Cij`).
//! * **Conjunction** (pairs of trends):
//!   `COUNT(Pi ∧ Pj) = Ci·Cj + Ci·Cij + Cj·Cij + C(Cij, 2)`.
//!
//! When the two patterns share no event type, `Cij = 0` — the common case
//! after desugaring `*`/`?` — and the compiler already folds those
//! alternatives additively. These helpers cover the general case where the
//! caller obtains `Cij` from a product pattern.

use greta_bignum::BigUint;
use greta_query::compile::{AggKind, AltPlan, CompiledAgg, CompiledQuery, GraphId, GraphSpec};
use greta_query::predicate::PredicateSet;
use greta_query::template::{StateInfo, Template, TransKind};
use greta_query::StateId;

/// Errors from query-level composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// The operand query has a shape the product construction does not
    /// cover (multiple alternatives, negation, predicates, non-COUNT(*)
    /// aggregates, mismatched windows).
    Unsupported(&'static str),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::Unsupported(m) => write!(f, "composition unsupported: {m}"),
        }
    }
}

impl std::error::Error for ComposeError {}

fn single_positive_plan(q: &CompiledQuery) -> Result<&AltPlan, ComposeError> {
    if q.alternatives.len() != 1 {
        return Err(ComposeError::Unsupported(
            "operand must have a single pattern alternative",
        ));
    }
    let alt = &q.alternatives[0];
    if alt.graphs.len() != 1 {
        return Err(ComposeError::Unsupported("operand must be negation-free"));
    }
    if !alt.predicates.vertex.is_empty() || !alt.predicates.edges.is_empty() {
        return Err(ComposeError::Unsupported(
            "operand must be predicate-free (predicates would need conjunction)",
        ));
    }
    Ok(alt)
}

/// Build the **product template** recognizing exactly the trends matched by
/// *both* operand patterns (the DFA-intersection of §9 used to obtain
/// `Cij`). Returns `Ok(None)` when the intersection is empty by
/// construction (`Cij = 0`, e.g. type-disjoint operands).
///
/// Operand queries must be single-alternative, negation- and
/// predicate-free `COUNT(*)` queries over the same window (the §9 setting).
pub fn intersection_query(
    qa: &CompiledQuery,
    qb: &CompiledQuery,
) -> Result<Option<CompiledQuery>, ComposeError> {
    if qa.window != qb.window {
        return Err(ComposeError::Unsupported("operand windows differ"));
    }
    let a = single_positive_plan(qa)?;
    let b = single_positive_plan(qb)?;
    let (ta, tb) = (&a.graphs[0].template, &b.graphs[0].template);

    // Product states: pairs of states with the same event type.
    let mut pair_id: std::collections::HashMap<(StateId, StateId), StateId> =
        std::collections::HashMap::new();
    let mut states: Vec<StateInfo> = Vec::new();
    let mut state_types = Vec::new();
    for sa in &ta.states {
        for sb in &tb.states {
            if sa.type_name != sb.type_name {
                continue;
            }
            let id = StateId(states.len() as u16);
            pair_id.insert((sa.occ, sb.occ), id);
            states.push(StateInfo {
                occ: id,
                type_name: sa.type_name.clone(),
                binding: format!("{}&{}", sa.binding, sb.binding),
            });
            state_types.push((id, a.graphs[0].type_of(sa.occ)));
        }
    }
    let (Some(&start), Some(&end)) = (
        pair_id.get(&(ta.start, tb.start)),
        pair_id.get(&(ta.end, tb.end)),
    ) else {
        return Ok(None); // start/end types differ ⇒ no common trend
    };

    // Product transitions: both operands must allow the adjacency.
    let mut transitions = Vec::new();
    for (fa, ga, _) in &ta.transitions {
        for (fb, gb, _) in &tb.transitions {
            if let (Some(&from), Some(&to)) = (pair_id.get(&(*fa, *fb)), pair_id.get(&(*ga, *gb))) {
                transitions.push((from, to, TransKind::Seq));
            }
        }
    }
    transitions.sort();
    transitions.dedup();

    let template = Template {
        states,
        transitions,
        start,
        end,
    };
    Ok(Some(CompiledQuery {
        alternatives: vec![AltPlan {
            graphs: vec![GraphSpec {
                id: GraphId(0),
                template,
                parent: None,
                previous: None,
                following: None,
                state_types,
            }],
            predicates: PredicateSet::default(),
        }],
        aggregates: vec![CompiledAgg {
            label: "COUNT(*)".into(),
            kind: AggKind::CountStar,
        }],
        window: qa.window,
        group_by: Vec::new(),
        partition_attrs: Vec::new(),
    }))
}

/// `COUNT(Pi ∨ Pj)` from total counts and the overlap count.
///
/// Panics if `cij` exceeds either total (it is a sub-multiset of both).
pub fn disjunction_count(count_i: &BigUint, count_j: &BigUint, cij: &BigUint) -> BigUint {
    assert!(cij <= count_i && cij <= count_j, "overlap exceeds a total");
    let mut out = count_i.clone();
    out.add_assign_ref(count_j);
    out.sub_assign_ref(cij);
    out
}

/// `COUNT(Pi ∧ Pj)` from total counts and the overlap count (paper §9).
pub fn conjunction_count(count_i: &BigUint, count_j: &BigUint, cij: &BigUint) -> BigUint {
    assert!(cij <= count_i && cij <= count_j, "overlap exceeds a total");
    let mut ci = count_i.clone(); // exclusive to Pi
    ci.sub_assign_ref(cij);
    let mut cj = count_j.clone(); // exclusive to Pj
    cj.sub_assign_ref(cij);

    let mut out = ci.mul_ref(&cj);
    out.add_assign_ref(&ci.mul_ref(cij));
    out.add_assign_ref(&cj.mul_ref(cij));
    out.add_assign_ref(&cij.choose_2());
    out
}

/// f64 variants for the default engine carrier.
pub fn disjunction_count_f64(ci: f64, cj: f64, cij: f64) -> f64 {
    ci + cj - cij
}

/// f64 conjunction count (paper §9 formula).
pub fn conjunction_count_f64(count_i: f64, count_j: f64, cij: f64) -> f64 {
    let ci = count_i - cij;
    let cj = count_j - cij;
    ci * cj + ci * cij + cj * cij + cij * (cij - 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GretaEngine;
    use greta_types::{Event, EventBuilder, SchemaRegistry, Time};

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    fn reg_ab() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        reg.register_type("B", &[]).unwrap();
        reg
    }

    fn stream(reg: &SchemaRegistry, spec: &[(&str, u64)]) -> Vec<Event> {
        spec.iter()
            .map(|(t, ts)| EventBuilder::new(reg, t).unwrap().at(Time(*ts)).build())
            .collect()
    }

    fn count(q: &CompiledQuery, reg: &SchemaRegistry, evs: &[Event]) -> f64 {
        let mut e = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        e.run(evs)
            .unwrap()
            .iter()
            .map(|r| r.values[0].to_f64())
            .sum()
    }

    #[test]
    fn product_template_of_overlapping_patterns() {
        // Pi = SEQ(A, B+), Pj = SEQ(A+, B): common trends are exactly
        // SEQ(A, B) (one a, one b).
        let reg = reg_ab();
        let qa = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let qb = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A+, B) WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let qij = intersection_query(&qa, &qb).unwrap().expect("non-empty");
        let q_ab = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let evs = stream(
            &reg,
            &[("A", 1), ("A", 2), ("B", 3), ("B", 4), ("A", 5), ("B", 6)],
        );
        assert_eq!(count(&qij, &reg, &evs), count(&q_ab, &reg, &evs));
        // And the §9 disjunction formula is internally consistent.
        let (ci, cj, cij) = (
            count(&qa, &reg, &evs),
            count(&qb, &reg, &evs),
            count(&qij, &reg, &evs),
        );
        assert_eq!(disjunction_count_f64(ci, cj, cij), ci + cj - cij);
        assert!(cij <= ci.min(cj));
    }

    #[test]
    fn identical_patterns_intersect_to_themselves() {
        let reg = reg_ab();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let qij = intersection_query(&q, &q).unwrap().expect("non-empty");
        let evs = stream(&reg, &[("A", 1), ("A", 2), ("A", 3)]);
        assert_eq!(count(&qij, &reg, &evs), 7.0);
    }

    #[test]
    fn type_disjoint_patterns_have_empty_intersection() {
        let reg = reg_ab();
        let qa =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let qb =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN B+ WITHIN 100 SLIDE 100", &reg).unwrap();
        assert!(intersection_query(&qa, &qb).unwrap().is_none());
    }

    #[test]
    fn unsupported_operands_are_rejected() {
        let reg = reg_ab();
        let plain =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let negated = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A+, NOT B) WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        assert!(intersection_query(&plain, &negated).is_err());
        let other_window =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 50 SLIDE 50", &reg).unwrap();
        assert!(intersection_query(&plain, &other_window).is_err());
    }

    #[test]
    fn disjunction_via_product_matches_trend_set_union() {
        // Ground truth: enumerate the two trend sets as event-index
        // sequences and take the set union.
        let reg = reg_ab();
        let qa = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let qb = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A+, B) WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let evs = stream(&reg, &[("A", 1), ("B", 2), ("A", 3), ("B", 4), ("B", 5)]);

        // Union via brute-force path enumeration over each template.
        let union = {
            let mut set: std::collections::HashSet<Vec<usize>> = Default::default();
            for q in [&qa, &qb] {
                enumerate_event_paths(q, &evs, &mut set);
            }
            set.len() as f64
        };
        let qij = intersection_query(&qa, &qb).unwrap().unwrap();
        let formula = disjunction_count_f64(
            count(&qa, &reg, &evs),
            count(&qb, &reg, &evs),
            count(&qij, &reg, &evs),
        );
        assert_eq!(formula, union);

        fn enumerate_event_paths(
            q: &CompiledQuery,
            evs: &[Event],
            out: &mut std::collections::HashSet<Vec<usize>>,
        ) {
            // Tiny brute force: try every subsequence of event indices and
            // check it against the template adjacency.
            let t = &q.alternatives[0].graphs[0].template;
            let n = evs.len();
            let type_of = |i: usize| evs[i].type_id;
            let spec = &q.alternatives[0].graphs[0];
            // enumerate subsets in index order up to length n
            let mut stack: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            while let Some(path) = stack.pop() {
                let last = *path.last().unwrap();
                // state assignment check by simple DP over states
                if accepts(spec, t, evs, &path) {
                    out.insert(path.clone());
                }
                for next in last + 1..n {
                    if evs[next].time > evs[last].time {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push(p);
                    }
                }
                let _ = type_of;
            }
        }

        fn accepts(
            spec: &greta_query::compile::GraphSpec,
            t: &Template,
            evs: &[Event],
            path: &[usize],
        ) -> bool {
            // DP over possible states per position.
            let mut cur: Vec<StateId> = t
                .states
                .iter()
                .filter(|s| s.occ == t.start && spec.type_of(s.occ) == evs[path[0]].type_id)
                .map(|s| s.occ)
                .collect();
            for &i in &path[1..] {
                let mut next = Vec::new();
                for s in &t.states {
                    if spec.type_of(s.occ) != evs[i].type_id {
                        continue;
                    }
                    let preds = t.predecessors(s.occ);
                    if cur.iter().any(|c| preds.contains(c)) {
                        next.push(s.occ);
                    }
                }
                cur = next;
                if cur.is_empty() {
                    return false;
                }
            }
            cur.contains(&t.end)
        }
    }

    #[test]
    fn disjoint_patterns_add() {
        assert_eq!(disjunction_count(&b(5), &b(7), &b(0)), b(12));
        // Conjunction of disjoint patterns: all pairs.
        assert_eq!(conjunction_count(&b(5), &b(7), &b(0)), b(35));
    }

    #[test]
    fn overlap_subtracted_once() {
        assert_eq!(disjunction_count(&b(5), &b(7), &b(3)), b(9));
    }

    #[test]
    fn conjunction_with_overlap() {
        // Ci=2 exclusive, Cj=4 exclusive, Cij=3:
        // 2*4 + 2*3 + 4*3 + C(3,2)=3 → 8+6+12+3 = 29.
        assert_eq!(conjunction_count(&b(5), &b(7), &b(3)), b(29));
        assert_eq!(conjunction_count_f64(5.0, 7.0, 3.0), 29.0);
    }

    #[test]
    fn identical_patterns() {
        // Pi = Pj = Pij with n trends: disjunction = n; conjunction = C(n,2).
        assert_eq!(disjunction_count(&b(4), &b(4), &b(4)), b(4));
        assert_eq!(conjunction_count(&b(4), &b(4), &b(4)), b(6));
        assert_eq!(conjunction_count_f64(4.0, 4.0, 4.0), 6.0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn invalid_overlap_panics() {
        disjunction_count(&b(2), &b(5), &b(3));
    }

    #[test]
    fn f64_matches_bignum() {
        for (i, j, o) in [(10u64, 20, 5), (0, 0, 0), (7, 7, 7), (100, 50, 50)] {
            assert_eq!(
                disjunction_count(&b(i), &b(j), &b(o)).to_f64(),
                disjunction_count_f64(i as f64, j as f64, o as f64)
            );
            assert_eq!(
                conjunction_count(&b(i), &b(j), &b(o)).to_f64(),
                conjunction_count_f64(i as f64, j as f64, o as f64)
            );
        }
    }
}
