//! Negation runtime (paper §5.2).
//!
//! Every **negative** GRETA graph produces an [`InvalidationLog`]: one entry
//! per finished trend `(end_time, start_time)`, where `start_time` is the
//! *latest* start over all trends finishing at that END event (propagated
//! through the graph like an aggregate — a later start invalidates strictly
//! more events, so it dominates).
//!
//! The dependent (parent) graph consumes the log per Definition 5: an event
//! of the *previous* type with time `< start_time` may not connect to an
//! event of the *following* type with time `> end_time`. Because streams
//! are in-order and thresholds only compare with strict inequalities, the
//! sequential engine needs no locking — this is the degenerate (and
//! correct) instance of the §7 stream-transaction scheduler.

use crate::window::WindowId;
use greta_query::compile::{GraphId, GraphSpec};
use greta_query::StateId;
use greta_types::Time;

/// Append-only log of finished negative trends.
///
/// Entries are appended in `end_time` order (END events arrive in-order).
/// `threshold_before(t)` answers "the largest trend start among trends that
/// finished strictly before `t`" in `O(log n)` via a prefix-max.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvalidationLog {
    /// `(end_time, prefix_max_start)` with strictly increasing `end_time`.
    entries: Vec<(Time, Time)>,
    /// End time of the first finished trend (drives Case-3 event dropping).
    first_end: Option<Time>,
}

impl InvalidationLog {
    /// Record a finished negative trend.
    pub fn push(&mut self, end: Time, start: Time) {
        if self.first_end.is_none() {
            self.first_end = Some(end);
        }
        let pmax = match self.entries.last() {
            Some(&(last_end, last_max)) => {
                debug_assert!(last_end <= end, "END events arrive in-order");
                if last_end == end {
                    // merge same-time trends, keeping the dominating start
                    let m = last_max.max(start);
                    self.entries.last_mut().unwrap().1 = m;
                    return;
                }
                last_max.max(start)
            }
            None => start,
        };
        self.entries.push((end, pmax));
    }

    /// Largest trend-start among trends finished strictly before `t`
    /// (events with time `<` this threshold are invalid at time `t`).
    /// `None` when no trend finished before `t`.
    pub fn threshold_before(&self, t: Time) -> Option<Time> {
        // Find the last entry with end < t.
        let idx = self.entries.partition_point(|&(end, _)| end < t);
        if idx == 0 {
            None
        } else {
            Some(self.entries[idx - 1].1)
        }
    }

    /// End time of the first finished trend, if any (Case 3: all dependent
    /// events arriving strictly after this are dropped, Fig. 8(b)).
    pub fn first_end(&self) -> Option<Time> {
        self.first_end
    }

    /// Number of recorded (merged) trend completions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no trend finished yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap bytes.
    pub fn heap_size(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(Time, Time)>()
    }

    /// Append the binary encoding (durability snapshots).
    pub fn encode(&self, out: &mut Vec<u8>) {
        use greta_types::codec::{put_u32, put_u64};
        put_u32(out, self.entries.len() as u32);
        for (end, pmax) in &self.entries {
            put_u64(out, end.ticks());
            put_u64(out, pmax.ticks());
        }
        crate::state::put_opt_u64(out, self.first_end.map(Time::ticks));
    }

    /// Decode a log written by [`encode`](Self::encode).
    pub fn decode(
        r: &mut greta_types::Reader<'_>,
    ) -> Result<InvalidationLog, greta_types::CodecError> {
        let n = r.seq_len(16)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((Time(r.u64()?), Time(r.u64()?)));
        }
        let first_end = crate::state::get_opt_u64(r)?.map(Time);
        Ok(InvalidationLog { entries, first_end })
    }
}

/// How a negative child graph constrains its parent (derived from the
/// previous/following connections of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepMode {
    /// Case 1 `SEQ(Pi, NOT N, Pj)`: invalidation applies to connections
    /// from `previous`-state events to `following`-state events.
    Pair {
        /// `end(Pi)` in the parent template.
        previous: StateId,
        /// `start(Pj)` in the parent template.
        following: StateId,
    },
    /// Case 2 `SEQ(Pi, NOT N)`: invalidation applies to **all** parent
    /// connections and excludes invalid END events from final aggregates at
    /// window close (Fig. 8(a)).
    InvalidatePrevious,
    /// Case 3 `SEQ(NOT N, Pj)`: all parent events arriving strictly after
    /// the first finished trend are dropped (Fig. 8(b), Example 5).
    DropFollowing,
}

impl DepMode {
    /// Derive the mode from a compiled negative graph spec.
    pub fn of(spec: &GraphSpec) -> DepMode {
        match (spec.previous, spec.following) {
            (Some(previous), Some(following)) => DepMode::Pair {
                previous,
                following,
            },
            (Some(_), None) => DepMode::InvalidatePrevious,
            (None, _) => DepMode::DropFollowing,
        }
    }
}

/// A parent graph's view of one negative child.
#[derive(Debug, Clone, PartialEq)]
pub struct Dependency {
    /// The child graph producing invalidations.
    pub child: GraphId,
    /// How invalidations apply.
    pub mode: DepMode,
}

/// Decide whether a candidate predecessor is valid for a connection
/// `prev_state → next_state` happening at time `now`, given the dependency
/// list and an accessor for child logs.
pub fn predecessor_valid<'a>(
    deps: &[Dependency],
    logs: impl Fn(GraphId) -> Option<&'a InvalidationLog>,
    prev_state: StateId,
    next_state: StateId,
    pred_time: Time,
    now: Time,
) -> bool {
    for d in deps {
        let applies = match d.mode {
            DepMode::Pair {
                previous,
                following,
            } => previous == prev_state && following == next_state,
            DepMode::InvalidatePrevious => true,
            DepMode::DropFollowing => false, // handled at insertion
        };
        if !applies {
            continue;
        }
        if let Some(log) = logs(d.child) {
            if let Some(thr) = log.threshold_before(now) {
                if pred_time < thr {
                    return false;
                }
            }
        }
    }
    true
}

/// Decide whether an END vertex still contributes to the final aggregate of
/// a window closing at `close_time` (Case 2 exclusion).
pub fn end_event_valid_at_close<'a>(
    deps: &[Dependency],
    logs: impl Fn(GraphId) -> Option<&'a InvalidationLog>,
    vertex_time: Time,
    close_time: Time,
) -> bool {
    for d in deps {
        if d.mode != DepMode::InvalidatePrevious {
            continue;
        }
        if let Some(log) = logs(d.child) {
            if let Some(thr) = log.threshold_before(close_time) {
                if vertex_time < thr {
                    return false;
                }
            }
        }
    }
    true
}

/// Decide whether a new event offered to the parent graph at `t` must be
/// dropped (Case 3).
pub fn insertion_dropped<'a>(
    deps: &[Dependency],
    logs: impl Fn(GraphId) -> Option<&'a InvalidationLog>,
    t: Time,
) -> bool {
    deps.iter().any(|d| {
        d.mode == DepMode::DropFollowing
            && logs(d.child)
                .and_then(InvalidationLog::first_end)
                .is_some_and(|end| t > end)
    })
}

/// Marker for result rows deferred to window close (Case 2 queries).
pub fn needs_deferred_final(deps: &[Dependency]) -> bool {
    deps.iter().any(|d| d.mode == DepMode::InvalidatePrevious)
}

/// Bookkeeping: window ids a deferred-final window scan must cover.
pub type DeferredWindows = std::collections::BTreeSet<WindowId>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_thresholds() {
        let mut log = InvalidationLog::default();
        assert_eq!(log.threshold_before(Time(10)), None);
        log.push(Time(6), Time(5)); // trend (5..6)
        log.push(Time(9), Time(3)); // trend (3..9) — weaker start
        assert_eq!(log.threshold_before(Time(6)), None); // strict <
        assert_eq!(log.threshold_before(Time(7)), Some(Time(5)));
        assert_eq!(log.threshold_before(Time(10)), Some(Time(5))); // prefix max
        log.push(Time(12), Time(11));
        assert_eq!(log.threshold_before(Time(13)), Some(Time(11)));
        assert_eq!(log.first_end(), Some(Time(6)));
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn log_merges_same_end_time() {
        let mut log = InvalidationLog::default();
        log.push(Time(5), Time(2));
        log.push(Time(5), Time(4));
        assert_eq!(log.len(), 1);
        assert_eq!(log.threshold_before(Time(6)), Some(Time(4)));
    }

    #[test]
    fn dep_mode_derivation() {
        use greta_query::CompiledQuery;
        use greta_types::SchemaRegistry;
        let mut reg = SchemaRegistry::new();
        for t in ["A", "B", "E"] {
            reg.register_type(t, &[]).unwrap();
        }
        let q = |s: &str| CompiledQuery::parse(s, &reg).unwrap();

        let q1 = q("RETURN COUNT(*) PATTERN SEQ(A+, NOT E, B) WITHIN 10 SLIDE 10");
        assert!(matches!(
            DepMode::of(&q1.alternatives[0].graphs[1]),
            DepMode::Pair { .. }
        ));
        let q2 = q("RETURN COUNT(*) PATTERN SEQ(A+, NOT E) WITHIN 10 SLIDE 10");
        assert_eq!(
            DepMode::of(&q2.alternatives[0].graphs[1]),
            DepMode::InvalidatePrevious
        );
        let q3 = q("RETURN COUNT(*) PATTERN SEQ(NOT E, A+) WITHIN 10 SLIDE 10");
        assert_eq!(
            DepMode::of(&q3.alternatives[0].graphs[1]),
            DepMode::DropFollowing
        );
    }

    #[test]
    fn predecessor_validity_pair_mode() {
        let mut log = InvalidationLog::default();
        log.push(Time(6), Time(5));
        let deps = vec![Dependency {
            child: GraphId(1),
            mode: DepMode::Pair {
                previous: StateId(0),
                following: StateId(1),
            },
        }];
        let logs = |g: GraphId| if g == GraphId(1) { Some(&log) } else { None };
        // Connection A(0)→B(1) at t=7: preds before time 5 invalid.
        assert!(!predecessor_valid(
            &deps,
            logs,
            StateId(0),
            StateId(1),
            Time(4),
            Time(7)
        ));
        assert!(predecessor_valid(
            &deps,
            logs,
            StateId(0),
            StateId(1),
            Time(5),
            Time(7)
        ));
        // At t=6 (not strictly after end) nothing is invalid.
        assert!(predecessor_valid(
            &deps,
            logs,
            StateId(0),
            StateId(1),
            Time(4),
            Time(6)
        ));
        // Other connections (A→A) unaffected.
        assert!(predecessor_valid(
            &deps,
            logs,
            StateId(0),
            StateId(0),
            Time(4),
            Time(7)
        ));
    }

    #[test]
    fn case2_close_filter_and_case3_drop() {
        let mut log = InvalidationLog::default();
        log.push(Time(3), Time(3)); // single-event trend at t=3
        let deps2 = vec![Dependency {
            child: GraphId(1),
            mode: DepMode::InvalidatePrevious,
        }];
        let logs = |g: GraphId| if g == GraphId(1) { Some(&log) } else { None };
        assert!(!end_event_valid_at_close(&deps2, logs, Time(1), Time(10)));
        assert!(end_event_valid_at_close(&deps2, logs, Time(3), Time(10)));
        assert!(needs_deferred_final(&deps2));

        let deps3 = vec![Dependency {
            child: GraphId(1),
            mode: DepMode::DropFollowing,
        }];
        assert!(!insertion_dropped(&deps3, logs, Time(3))); // not strictly after
        assert!(insertion_dropped(&deps3, logs, Time(4)));
        assert!(!needs_deferred_final(&deps3));
    }
}
