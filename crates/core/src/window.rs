//! Sliding-window arithmetic (paper §6).
//!
//! Window `wid` covers the half-open time interval
//! `[wid · slide, wid · slide + within)`. An event at time `t` falls into
//! `k = ⌈within / slide⌉` windows at most; the GRETA graph is shared across
//! them and each vertex keeps one aggregate per window id (Fig. 9(b)).

use greta_query::WindowSpec;
use greta_types::Time;

/// Window identifier: the window starting at `wid · slide`.
pub type WindowId = u64;

/// All window ids an event at time `t` falls into, ascending.
///
/// ```
/// use greta_core::window::windows_of;
/// use greta_query::WindowSpec;
/// use greta_types::Time;
/// let w = WindowSpec::new(10, 3); // WITHIN 10 SLIDE 3
/// assert_eq!(windows_of(Time(9), &w).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
/// ```
pub fn windows_of(t: Time, w: &WindowSpec) -> impl Iterator<Item = WindowId> {
    let t = t.ticks();
    let hi = t / w.slide; // last window starting at or before t
    let lo = if t >= w.within {
        // first window whose end (wid*slide + within) is after t
        (t - w.within) / w.slide + 1
    } else {
        0
    };
    lo..=hi
}

/// Close time of a window: the first time stamp **not** in the window.
pub fn window_close_time(wid: WindowId, w: &WindowSpec) -> Time {
    Time(wid * w.slide + w.within)
}

/// Start time of a window.
pub fn window_start_time(wid: WindowId, w: &WindowSpec) -> Time {
    Time(wid * w.slide)
}

/// Pane length: the gcd of `within` and `slide` (paper §7 / \[15\]); window
/// boundaries always align with pane boundaries.
pub fn pane_length(w: &WindowSpec) -> u64 {
    gcd(w.within, w.slide)
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The pane (by start time) containing time `t`.
pub fn pane_start(t: Time, pane_len: u64) -> Time {
    Time(t.ticks() / pane_len * pane_len)
}

/// Last window id that includes any part of the pane starting at `ps`
/// (used for batch pane purge: the pane is dead once this window closed).
pub fn last_window_of_pane(ps: Time, pane_len: u64, w: &WindowSpec) -> WindowId {
    // Last window whose start is before the pane's end.
    let pane_end = ps.ticks() + pane_len;
    (pane_end - 1) / w.slide
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wspec(within: u64, slide: u64) -> WindowSpec {
        WindowSpec::new(within, slide)
    }

    #[test]
    fn tumbling_window_membership() {
        let w = wspec(10, 10);
        assert_eq!(windows_of(Time(0), &w).collect::<Vec<_>>(), vec![0]);
        assert_eq!(windows_of(Time(9), &w).collect::<Vec<_>>(), vec![0]);
        assert_eq!(windows_of(Time(10), &w).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn figure_9_sliding_window() {
        // WITHIN 10 SLIDE 3 (Fig. 9): event at t=4 is in windows starting at
        // 0 and 3 (W1, W2 in the figure); event at t=9 in windows 0,3,6,9.
        let w = wspec(10, 3);
        assert_eq!(windows_of(Time(4), &w).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(
            windows_of(Time(9), &w).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // k = ceil(10/3) = 4 windows at most
        assert!(windows_of(Time(100), &w).count() <= 4);
    }

    #[test]
    fn window_membership_is_consistent() {
        // t is in window wid  ⇔  wid ∈ windows_of(t)
        let w = wspec(7, 2);
        for t in 0..40u64 {
            for wid in 0..25u64 {
                let member = wid * 2 <= t && t < wid * 2 + 7;
                let listed = windows_of(Time(t), &w).any(|x| x == wid);
                assert_eq!(member, listed, "t={t} wid={wid}");
            }
        }
    }

    #[test]
    fn close_and_start_times() {
        let w = wspec(10, 3);
        assert_eq!(window_start_time(2, &w), Time(6));
        assert_eq!(window_close_time(2, &w), Time(16));
    }

    #[test]
    fn pane_arithmetic() {
        let w = wspec(10, 3);
        assert_eq!(pane_length(&w), 1);
        let w = wspec(12, 3);
        assert_eq!(pane_length(&w), 3);
        assert_eq!(pane_start(Time(7), 3), Time(6));
        // Pane [6,9) of WITHIN 12 SLIDE 3: last containing window starts at 6
        // (wid 2), since window 2 = [6,18).
        assert_eq!(last_window_of_pane(Time(6), 3, &w), 2);
    }

    #[test]
    fn pane_purge_window_is_tight() {
        // After last_window_of_pane closes, no later window overlaps the pane.
        let w = wspec(12, 4);
        let pl = pane_length(&w); // 4
        for ps in (0..40).step_by(pl as usize) {
            let last = last_window_of_pane(Time(ps), pl, &w);
            // window last+1 starts at (last+1)*slide >= ps+pl
            assert!((last + 1) * w.slide >= ps + pl);
            // window `last` overlaps the pane
            assert!(last * w.slide < ps + pl);
        }
    }
}
