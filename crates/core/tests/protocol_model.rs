//! Exhaustive model checking of the executor's barrier cut protocol
//! (`greta_core::protocol_model`) — plus the checker's own red path:
//! deliberately broken shard variants must be caught, or the checker
//! has lost its teeth.
//!
//! These tests are part of the `static-analysis` CI job. Each clean
//! exploration is required to cover at least 10 000 distinct schedules,
//! so the invariants are not "tested" on one lucky interleaving but
//! proven over the whole space the model can express.

use greta_core::protocol_model::{explore, ExploreReport, Fault, ModelConfig, Op};

fn run(shards: usize, script: Vec<Op>, fault: Fault) -> Result<ExploreReport, String> {
    explore(&ModelConfig {
        shards,
        script,
        fault,
        max_schedules: 5_000_000,
    })
    .map_err(|v| v.to_string())
}

/// The full operation set — ingest, checkpoint, rebalance (fused with
/// the checkpoint), register, deregister — across two shards. Every
/// schedule checks all four invariants; the exploration must be
/// genuinely combinatorial (≥10k schedules).
#[test]
fn two_shards_full_protocol_holds_over_all_schedules() {
    let report = run(
        2,
        vec![
            Op::Register(1),
            Op::Ingest,
            Op::Checkpoint,
            Op::Rebalance, // fuses with the checkpoint: one snapshot
            Op::Ingest,
            Op::Deregister(1),
        ],
        Fault::None,
    )
    .expect("protocol invariants must hold in every schedule");
    assert!(
        report.schedules >= 10_000,
        "exploration is not exhaustive enough: {} schedules",
        report.schedules
    );
}

/// Barrier cut across three shards: the all-shards-cut-at-same-seq
/// invariant has more room to break with more acks in flight.
#[test]
fn three_shards_barrier_cut_holds_over_all_schedules() {
    let report = run(
        3,
        vec![Op::Register(1), Op::Ingest, Op::Checkpoint],
        Fault::None,
    )
    .expect("protocol invariants must hold in every schedule");
    assert!(
        report.schedules >= 10_000,
        "exploration is not exhaustive enough: {} schedules",
        report.schedules
    );
}

/// Back-to-back cuts that do NOT fuse (separated by an ingest) still
/// balance the snapshot accounting in every schedule.
#[test]
fn unfused_cuts_account_one_snapshot_each() {
    run(
        2,
        vec![
            Op::Register(1),
            Op::Ingest,
            Op::Checkpoint,
            Op::Ingest,
            Op::Rebalance,
        ],
        Fault::None,
    )
    .expect("two separate cuts must balance the snapshot accounting");
}

/// Red path: a shard that acks a barrier without cutting its pending
/// rows into the snapshot MUST be caught — those rows either leak past
/// the barrier or go missing entirely.
#[test]
fn skipped_cut_on_one_shard_is_caught() {
    let err = run(
        2,
        vec![Op::Register(1), Op::Ingest, Op::Ingest, Op::Checkpoint],
        Fault::SkipCut { shard: 1 },
    )
    .expect_err("the checker failed to catch a skipped cut");
    assert!(
        err.contains("row-crosses-barrier") || err.contains("exactly-once-delivery"),
        "unexpected violation kind: {err}"
    );
}

/// Red path: a shard that acks a barrier ahead of events queued before
/// it cuts at the wrong sequence — the completed barrier's processed
/// union no longer covers the ingest prefix.
#[test]
fn early_ack_on_one_shard_is_caught() {
    let err = run(
        2,
        vec![Op::Register(1), Op::Ingest, Op::Ingest, Op::Checkpoint],
        Fault::EarlyAck { shard: 0 },
    )
    .expect_err("the checker failed to catch an early barrier ack");
    assert!(
        err.contains("shards-cut-at-different-seqs"),
        "unexpected violation kind: {err}"
    );
}

/// Violations are deterministic: the same config reports the same
/// schedule index and a non-empty replayable trace, twice in a row.
#[test]
fn violations_are_reproducible() {
    let cfg = ModelConfig {
        shards: 2,
        script: vec![Op::Register(1), Op::Ingest, Op::Ingest, Op::Checkpoint],
        fault: Fault::SkipCut { shard: 0 },
        max_schedules: 5_000_000,
    };
    let a = explore(&cfg).expect_err("fault must be caught");
    let b = explore(&cfg).expect_err("fault must be caught");
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.trace, b.trace);
    assert!(!a.trace.is_empty());
}
