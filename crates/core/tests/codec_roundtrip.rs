//! Property-based roundtrips for every persisted codec: data-model values
//! (`greta_types::codec`) and the snapshot sections the executor owns
//! (`GroupSketch`, `RoutingTable`).
//!
//! Two properties per codec, mirroring the codec-symmetry lint's contract:
//!
//! 1. `decode(encode(x)) == x` for arbitrary `x` — checked on re-encoded
//!    bytes, so float payloads compare by bit pattern (NaN-safe) and the
//!    check covers the *encoder* determinism too.
//! 2. Truncated or corrupted input decodes to a clean [`CodecError`] (or a
//!    different value, for single-byte corruption that stays in-format) —
//!    never a panic. Proptest turns any panic into a test failure.
//!
//! The vendored `proptest` is a trimmed re-implementation (integer ranges,
//! tuples, `vec`, `prop_oneof!`, `prop_map`): floats are generated from
//! arbitrary bit patterns and strings from an explicit charset.

use greta_core::{group_key_hash, GroupSketch, PartitionKey, RoutingTable};
use greta_types::codec::{GroupStats, Reader};
use greta_types::{Event, Schema, SchemaRegistry, Time, TypeId, Value};
use proptest::prelude::*;
use proptest::BoxedStrategy;
use std::collections::{BTreeSet, HashMap};

// ---------------------------------------------------------------- strategies

/// Arbitrary float from an arbitrary bit pattern: covers NaN payloads,
/// infinities, subnormals, and -0.0 — exactly what the codec stores.
fn float() -> BoxedStrategy<f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Short string over a charset with multi-byte UTF-8 in it.
fn name() -> BoxedStrategy<String> {
    const CHARS: [char; 8] = ['a', 'Z', '_', '0', 'é', '·', 'q', '9'];
    proptest::collection::vec(0usize..CHARS.len(), 0..8)
        .prop_map(|ix| ix.into_iter().map(|i| CHARS[i]).collect())
}

/// Arbitrary value, including non-finite floats and empty/unicode strings.
fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        float().prop_map(Value::Float),
        name().prop_map(|s| Value::from(s.as_str())),
        any::<bool>().prop_map(Value::Bool),
    ]
    .boxed()
}

fn event() -> BoxedStrategy<Event> {
    (
        any::<u64>(),
        any::<u16>(),
        proptest::collection::vec(value(), 0..6),
    )
        .prop_map(|(t, ty, attrs)| Event::new_unchecked(TypeId(ty), Time(t), attrs))
}

fn schema() -> BoxedStrategy<Schema> {
    (name(), proptest::collection::vec(name(), 0..5))
        .prop_map(|(name, attributes)| Schema { name, attributes })
}

/// Registry input: names and attributes are deduplicated at build time
/// (decode registers each schema and rejects duplicates, so a duplicating
/// strategy would only test the error path).
fn registry() -> BoxedStrategy<SchemaRegistry> {
    proptest::collection::vec((name(), proptest::collection::vec(name(), 0..4)), 0..6).prop_map(
        |raw| {
            let mut reg = SchemaRegistry::new();
            let mut seen = BTreeSet::new();
            for (name, attributes) in raw {
                if name.is_empty() || !seen.insert(name.clone()) {
                    continue;
                }
                let attributes: Vec<String> = attributes
                    .into_iter()
                    .filter(|a| !a.is_empty())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let attr_refs: Vec<&str> = attributes.iter().map(String::as_str).collect();
                reg.register_type(&name, &attr_refs).expect("unique names");
            }
            reg
        },
    )
}

/// Partition key: per-attribute grouping values, `None` = ungrouped slot.
fn partition_key() -> BoxedStrategy<PartitionKey> {
    proptest::collection::vec(
        prop_oneof![
            Just(None),
            any::<i64>().prop_map(|i| Some(Value::Int(i))),
            name().prop_map(|s| Some(Value::from(s.as_str()))),
        ],
        0..3,
    )
    .prop_map(PartitionKey)
}

fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    v.encode(&mut out);
    out
}

fn encode_event(e: &Event) -> Vec<u8> {
    let mut out = Vec::new();
    e.encode(&mut out);
    out
}

fn sketch_from(traffic: &[(PartitionKey, u64)], capacity: usize) -> GroupSketch {
    let mut sketch = GroupSketch::new(capacity);
    for (key, events) in traffic {
        for _ in 0..*events {
            let k = key.clone();
            sketch.bump_events(group_key_hash(key), move || k);
        }
    }
    sketch
}

// --------------------------------------------------------------- roundtrips

proptest! {
    /// `Value` roundtrips byte-exactly: decoding and re-encoding arbitrary
    /// values (NaN bit patterns and -0.0 included) reproduces the original
    /// buffer and consumes it fully.
    #[test]
    fn value_roundtrips(v in value()) {
        let buf = encode_value(&v);
        let mut r = Reader::new(&buf);
        let got = Value::decode(&mut r).expect("decode of valid encoding");
        prop_assert!(r.is_empty(), "decode left {} bytes unread", r.remaining());
        prop_assert_eq!(encode_value(&got), buf);
    }

    /// `Event` roundtrips byte-exactly, including events whose attribute
    /// arity matches no schema (the codec is schema-agnostic by contract).
    #[test]
    fn event_roundtrips(e in event()) {
        let buf = encode_event(&e);
        let mut r = Reader::new(&buf);
        let got = Event::decode(&mut r).expect("decode of valid encoding");
        prop_assert!(r.is_empty());
        prop_assert_eq!(encode_event(&got), buf);
    }

    /// `Schema` roundtrips field-for-field.
    #[test]
    fn schema_roundtrips(s in schema()) {
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let got = Schema::decode(&mut r).expect("decode of valid encoding");
        prop_assert!(r.is_empty());
        prop_assert_eq!(got, s);
    }

    /// `SchemaRegistry` roundtrips with dense ids preserved: every name
    /// resolves to the same `TypeId` before and after.
    #[test]
    fn registry_roundtrips(reg in registry()) {
        let mut buf = Vec::new();
        reg.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let got = SchemaRegistry::decode(&mut r).expect("decode of valid encoding");
        prop_assert!(r.is_empty());
        prop_assert_eq!(got.len(), reg.len());
        for (id, s) in reg.iter() {
            prop_assert_eq!(got.type_id(&s.name).expect("name survives"), id);
            prop_assert_eq!(&got.schema(id).attributes, &s.attributes);
        }
    }

    /// `GroupStats` roundtrips across the full `u64` range.
    #[test]
    fn group_stats_roundtrips(events in any::<u64>(), vertices in any::<u64>()) {
        let s = GroupStats { events, vertices };
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(GroupStats::decode(&mut r).expect("decode"), s);
        prop_assert!(r.is_empty());
    }

    /// Snapshot section: a `GroupSketch` built from arbitrary bump/vertex
    /// traffic re-encodes byte-identically after decode — the property the
    /// byte-identical-snapshot guarantee rests on.
    #[test]
    fn group_sketch_roundtrips(
        traffic in proptest::collection::vec((partition_key(), 1u64..30), 0..12),
        vertex_adds in proptest::collection::vec((0usize..12, 1u64..9), 0..6),
    ) {
        let mut sketch = sketch_from(&traffic, 64); // above traffic len: no compaction
        for (i, n) in &vertex_adds {
            if let Some((key, _)) = traffic.get(*i) {
                sketch.add_vertices(key, *n);
            }
        }
        let mut buf = Vec::new();
        sketch.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let got = GroupSketch::decode(64, &mut r).expect("decode of valid encoding");
        prop_assert!(r.is_empty());
        let mut buf2 = Vec::new();
        got.encode(&mut buf2);
        prop_assert_eq!(buf2, buf);
        prop_assert_eq!(got.len(), sketch.len());
    }

    /// Snapshot section: a `RoutingTable` with arbitrary pinned groups
    /// roundtrips exactly (epoch, overrides, and the derived hash index).
    #[test]
    fn routing_table_roundtrips(
        pins in proptest::collection::vec((partition_key(), 0u32..4), 0..8),
        installs in 1usize..4,
    ) {
        let shards = 4;
        // Duplicate generated keys collapse here (last one wins) — assert
        // against the installed map, not the raw pin list.
        let overrides: HashMap<PartitionKey, u32> = pins.into_iter().collect();
        let mut table = RoutingTable::default();
        for _ in 0..installs {
            // Re-installing advances the epoch; encode must carry it.
            table.install(overrides.clone());
        }
        let mut buf = Vec::new();
        table.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let got = RoutingTable::decode(&mut r, shards).expect("decode of valid encoding");
        prop_assert!(r.is_empty());
        prop_assert_eq!(&got, &table);
        for (key, shard) in &overrides {
            prop_assert_eq!(got.shard_for(key), Some(*shard as usize));
        }
    }
}

// ------------------------------------------------- truncation and corruption

proptest! {
    /// Every strict prefix of a valid `Value` encoding fails with a clean
    /// error: the decoder consumes a fixed span, so a shorter buffer can
    /// never decode successfully — and must never panic.
    #[test]
    fn truncated_value_is_clean_error(v in value(), cut_sel in any::<u64>()) {
        let buf = encode_value(&v);
        let cut = (cut_sel % buf.len() as u64) as usize; // strict prefix
        prop_assert!(Value::decode(&mut Reader::new(&buf[..cut])).is_err());
    }

    /// Every strict prefix of a valid `Event` encoding fails cleanly.
    #[test]
    fn truncated_event_is_clean_error(e in event(), cut_sel in any::<u64>()) {
        let buf = encode_event(&e);
        let cut = (cut_sel % buf.len() as u64) as usize;
        prop_assert!(Event::decode(&mut Reader::new(&buf[..cut])).is_err());
    }

    /// Single-byte corruption anywhere in an `Event` encoding never
    /// panics: it decodes to some event or fails with a `CodecError`. If
    /// it decodes, the result must itself re-encode without panicking.
    #[test]
    fn corrupted_event_never_panics(e in event(), idx_sel in any::<u64>(), flip in 1u8..=255) {
        let mut buf = encode_event(&e);
        let i = (idx_sel % buf.len() as u64) as usize;
        buf[i] ^= flip;
        if let Ok(got) = Event::decode(&mut Reader::new(&buf)) {
            let _ = encode_event(&got);
        }
    }

    /// Single-byte corruption in a snapshot's routing-table section never
    /// panics; whatever does decode is itself a well-formed table that
    /// re-encodes and re-decodes to an identical value.
    #[test]
    fn corrupted_routing_table_never_panics(
        pins in proptest::collection::vec((partition_key(), 0u32..4), 0..6),
        idx_sel in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let shards = 4;
        let mut table = RoutingTable::default();
        table.install(pins.into_iter().collect::<HashMap<_, _>>());
        let mut buf = Vec::new();
        table.encode(&mut buf);
        let i = (idx_sel % buf.len() as u64) as usize;
        buf[i] ^= flip;
        if let Ok(got) = RoutingTable::decode(&mut Reader::new(&buf), shards) {
            let mut buf2 = Vec::new();
            got.encode(&mut buf2);
            let again = RoutingTable::decode(&mut Reader::new(&buf2), shards)
                .expect("re-encoding of a decoded table is valid");
            prop_assert_eq!(again, got);
        }
    }

    /// Single-byte corruption in a group-sketch section never panics; a
    /// successful decode still respects the capacity bound (the decoder
    /// compacts immediately if the blob claims more groups than allowed).
    #[test]
    fn corrupted_group_sketch_never_panics(
        traffic in proptest::collection::vec((partition_key(), 1u64..20), 1..6),
        idx_sel in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let sketch = sketch_from(&traffic, 8);
        let mut buf = Vec::new();
        sketch.encode(&mut buf);
        let i = (idx_sel % buf.len() as u64) as usize;
        buf[i] ^= flip;
        if let Ok(got) = GroupSketch::decode(8, &mut Reader::new(&buf)) {
            prop_assert!(got.len() <= 8);
        }
    }
}
