//! Durability-layer errors.

use greta_types::CodecError;
use std::fmt;
use std::path::PathBuf;

/// Errors raised by the WAL, snapshot store, or manifest.
#[derive(Debug)]
pub enum DurabilityError {
    /// Underlying file-system failure.
    Io {
        /// What was being done.
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A frame's checksum did not match its payload: on-disk corruption
    /// (distinct from a torn tail, which is a crash artifact).
    BadChecksum {
        /// File containing the bad frame.
        file: PathBuf,
        /// Byte offset of the frame header.
        offset: u64,
    },
    /// A file ends mid-frame. For the **last** WAL segment this is the
    /// expected artifact of a crash mid-append; anywhere else it is
    /// corruption.
    TruncatedFrame {
        /// File containing the partial frame.
        file: PathBuf,
        /// Byte offset of the frame header.
        offset: u64,
    },
    /// Structurally invalid file (bad magic, impossible lengths, …).
    Corrupt {
        /// File concerned.
        file: PathBuf,
        /// Description.
        msg: String,
    },
    /// Payload (de)serialization failure.
    Codec(CodecError),
    /// The WAL writer was disabled after an earlier write failure left its
    /// in-memory buffer in an unknown state; reopen the log (which repairs
    /// the on-disk tail) to continue.
    Poisoned(String),
    /// No usable snapshot/manifest to recover from.
    NothingToRecover(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { context, source } => write!(f, "{context}: {source}"),
            DurabilityError::BadChecksum { file, offset } => write!(
                f,
                "checksum mismatch in {} at offset {offset}",
                file.display()
            ),
            DurabilityError::TruncatedFrame { file, offset } => write!(
                f,
                "truncated frame in {} at offset {offset}",
                file.display()
            ),
            DurabilityError::Corrupt { file, msg } => {
                write!(f, "corrupt file {}: {msg}", file.display())
            }
            DurabilityError::Codec(e) => write!(f, "{e}"),
            DurabilityError::Poisoned(m) => write!(f, "WAL writer poisoned: {m}"),
            DurabilityError::NothingToRecover(m) => write!(f, "nothing to recover: {m}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            DurabilityError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}

pub(crate) fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> DurabilityError {
    let context = context.into();
    move |source| DurabilityError::Io { context, source }
}
