//! # greta-durability
//!
//! Log-structured durability for the GRETA streaming runtime: a segmented
//! [write-ahead log](wal::Wal), an atomic [snapshot store](snapshot::SnapshotStore),
//! and a [recovery manifest](manifest::Manifest). The layering follows the
//! classic LSM / replication-log shape:
//!
//! ```text
//!  push(event) ──▶ WAL append (framed: len + crc32 + payload)
//!                    │ segments wal-<base>.seg, fsync on rotation
//!                    ▼
//!  every K closed windows: snapshot all shard engines + ingest state
//!                    │ snap-<epoch>.bin (atomic tmp+rename, crc32)
//!                    ▼
//!  MANIFEST {epoch, wal_index, shards}  (atomic rewrite)
//!                    │
//!                    ▼
//!  segments fully below wal_index are deleted, old snapshots purged
//! ```
//!
//! Recovery is the reverse: load the manifest, restore the snapshot of
//! `epoch`, replay WAL records from `wal_index` (tolerating a torn final
//! frame — the expected artifact of a crash mid-append; flagging checksum
//! mismatches as corruption). This crate stores opaque byte payloads; the
//! engine-state encoding lives in `greta-core`, the event encoding in
//! [`greta_types::codec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod manifest;
pub mod snapshot;
pub mod wal;

pub use error::DurabilityError;
pub use manifest::Manifest;
pub use snapshot::SnapshotStore;
pub use wal::{FsyncPolicy, TailPolicy, Wal};

use std::path::PathBuf;

/// Tuning knobs for the durability layer (all state lives under one
/// directory: WAL segments, snapshots, and the manifest).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments, snapshots, and the manifest.
    pub dir: PathBuf,
    /// Snapshot cadence: checkpoint after this many closed windows (per
    /// the executor's watermark). Must be ≥ 1.
    pub snapshot_every_windows: u64,
    /// Rotate WAL segments once they exceed this many bytes. Rotation
    /// fsyncs the sealed segment.
    pub segment_bytes: u64,
    /// When the WAL fsyncs appended records (see [`FsyncPolicy`]). The
    /// default, [`FsyncPolicy::AtCheckpoint`], syncs only at rotation and
    /// checkpoints: events since then may be lost on power failure, never
    /// corrupted.
    pub fsync: FsyncPolicy,
}

impl DurabilityConfig {
    /// Defaults rooted at `dir`: snapshot every 4 closed windows, 4 MiB
    /// segments, fsync at checkpoints/rotations only.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every_windows: 4,
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::AtCheckpoint,
        }
    }
}
