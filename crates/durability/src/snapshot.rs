//! Snapshot store: one checksummed, atomically-written file per epoch.
//!
//! Files are named `snap-<epoch>.bin` and written via temp-file + fsync +
//! rename (+ directory fsync), so a crash mid-write never leaves a readable
//! half-snapshot — either the old epoch or the new one is present, which is
//! what lets the manifest point at snapshots unconditionally.

use crate::crc::crc32;
use crate::error::{io_err, DurabilityError};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"GSNP";
const VERSION: u8 = 1;

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snap-{epoch:020}.bin"))
}

fn parse_epoch(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("snap-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// Store of per-epoch snapshot blobs in one directory.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotStore, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err(format!("create dir {}", dir.display())))?;
        Ok(SnapshotStore { dir })
    }

    /// Write the snapshot for `epoch` atomically and durably.
    pub fn write(&self, epoch: u64, payload: &[u8]) -> Result<(), DurabilityError> {
        let path = snapshot_path(&self.dir, epoch);
        let tmp = path.with_extension("tmp");
        let mut buf = Vec::with_capacity(payload.len() + 17);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        let mut f = File::create(&tmp).map_err(io_err(format!("create {}", tmp.display())))?;
        f.write_all(&buf)
            .and_then(|_| f.sync_all())
            .map_err(io_err(format!("write {}", tmp.display())))?;
        drop(f);
        fs::rename(&tmp, &path).map_err(io_err(format!(
            "rename {} -> {}",
            tmp.display(),
            path.display()
        )))?;
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err(format!("fsync dir {}", self.dir.display())))
    }

    /// Read and verify the snapshot of `epoch`.
    pub fn read(&self, epoch: u64) -> Result<Vec<u8>, DurabilityError> {
        let path = snapshot_path(&self.dir, epoch);
        let data = fs::read(&path).map_err(io_err(format!("read {}", path.display())))?;
        let corrupt = |msg: &str| DurabilityError::Corrupt {
            file: path.clone(),
            msg: msg.to_string(),
        };
        let Some((magic, rest)) = data.split_first_chunk::<4>() else {
            return Err(corrupt("missing snapshot header"));
        };
        if magic != MAGIC {
            return Err(corrupt("missing snapshot header"));
        }
        let Some((&[version], rest)) = rest.split_first_chunk::<1>() else {
            return Err(corrupt("missing snapshot header"));
        };
        if version != VERSION {
            return Err(corrupt(&format!("unsupported snapshot version {version}")));
        }
        let Some((crc_bytes, rest)) = rest.split_first_chunk::<4>() else {
            return Err(corrupt("missing snapshot header"));
        };
        let crc = u32::from_le_bytes(*crc_bytes);
        let Some((len_bytes, payload)) = rest.split_first_chunk::<8>() else {
            return Err(corrupt("missing snapshot header"));
        };
        let len = u64::from_le_bytes(*len_bytes) as usize;
        if payload.len() != len {
            return Err(corrupt(&format!(
                "payload length mismatch: header says {len}, file has {}",
                payload.len()
            )));
        }
        if crc32(payload) != crc {
            return Err(DurabilityError::BadChecksum {
                file: path,
                offset: 17,
            });
        }
        Ok(payload.to_vec())
    }

    /// Highest epoch with a snapshot file present, if any.
    pub fn latest_epoch(&self) -> Result<Option<u64>, DurabilityError> {
        let mut latest = None;
        for entry in
            fs::read_dir(&self.dir).map_err(io_err(format!("read dir {}", self.dir.display())))?
        {
            let entry = entry.map_err(io_err("read dir entry"))?;
            if let Some(e) = parse_epoch(&entry.path()) {
                latest = latest.max(Some(e));
            }
        }
        Ok(latest)
    }

    /// Delete snapshots with epoch < `epoch` (superseded by a newer one the
    /// manifest already points at).
    pub fn purge_before(&self, epoch: u64) -> Result<usize, DurabilityError> {
        let mut removed = 0;
        for entry in
            fs::read_dir(&self.dir).map_err(io_err(format!("read dir {}", self.dir.display())))?
        {
            let entry = entry.map_err(io_err("read dir entry"))?;
            let path = entry.path();
            if parse_epoch(&path).is_some_and(|e| e < epoch) {
                fs::remove_file(&path).map_err(io_err(format!("remove {}", path.display())))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("greta-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_read_latest_purge() {
        let dir = tmpdir("rw");
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.latest_epoch().unwrap(), None);
        store.write(1, b"one").unwrap();
        store.write(2, b"two").unwrap();
        assert_eq!(store.latest_epoch().unwrap(), Some(2));
        assert_eq!(store.read(2).unwrap(), b"two");
        assert_eq!(store.purge_before(2).unwrap(), 1);
        assert!(store.read(1).is_err());
        assert_eq!(store.read(2).unwrap(), b"two");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_detected() {
        let dir = tmpdir("corrupt");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(7, b"precious state").unwrap();
        let path = snapshot_path(&dir, 7);
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        fs::write(&path, &data).unwrap();
        assert!(matches!(
            store.read(7).unwrap_err(),
            DurabilityError::BadChecksum { .. }
        ));
        // Truncation is also caught (length mismatch).
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(matches!(
            store.read(7).unwrap_err(),
            DurabilityError::Corrupt { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
