//! Segmented write-ahead log.
//!
//! Records are opaque byte payloads framed as
//! `[len: u32 LE][crc32(payload): u32 LE][payload]` and appended to segment
//! files named `wal-<base>.seg`, where `<base>` is the global index of the
//! segment's first record. A segment is rotated once it exceeds the
//! configured size; rotation fsyncs the finished segment (and the
//! directory), so every record before the live segment is durable. Frames
//! never span segments.
//!
//! Crash anatomy (mirroring the segmented-log layout of LSM stores):
//!
//! * a crash mid-append leaves a **torn tail** — a partial frame at the end
//!   of the *last* segment. [`Wal::open`] repairs it by truncating to the
//!   last whole frame; [`Wal::replay`] with [`TailPolicy::Tolerate`] stops
//!   in front of it.
//! * a frame whose checksum does not match is **corruption**, reported as
//!   [`DurabilityError::BadChecksum`] — never silently skipped.

use crate::crc::crc32;
use crate::error::{io_err, DurabilityError};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const FRAME_HEADER: usize = 8; // len + crc

/// When appended records are fsynced (the durability/throughput dial).
///
/// Independent of the policy, rotation always fsyncs the sealed segment
/// and [`Wal::sync`] can be called explicitly (checkpoints do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after **every** append: durable up to the last record, at a
    /// large throughput cost.
    EachAppend,
    /// Group commit: an append fsyncs only when at least this many
    /// milliseconds passed since the last sync, so bursts share one fsync.
    /// While appends keep arriving, at most ~one interval of records is
    /// unsynced; if the stream then goes idle, the tail stays buffered
    /// until the next append, checkpoint, or rotation — there is no idle
    /// timer. `GroupCommit(0)` degenerates to [`FsyncPolicy::EachAppend`].
    GroupCommit(u64),
    /// fsync only at segment rotation and explicit [`Wal::sync`] calls
    /// (checkpoints). Loses at most a segment/checkpoint interval of
    /// records on power failure — or on a process kill, since appends
    /// buffer in user space until the next flush. The default.
    #[default]
    AtCheckpoint,
}

/// Upper bound on a single record; larger lengths are treated as corruption.
const MAX_RECORD: u32 = 1 << 30;

/// How [`Wal::replay`] treats a partial frame at the very end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailPolicy {
    /// Stop before the partial frame (a crash mid-append is expected).
    Tolerate,
    /// Surface it as [`DurabilityError::TruncatedFrame`].
    Error,
}

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("wal-{base:020}.seg"))
}

fn parse_segment_base(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let base = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    base.parse().ok()
}

/// Sorted `(base_index, path)` of every segment in `dir`.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_err(format!("read dir {}", dir.display())))? {
        let entry = entry.map_err(io_err("read dir entry"))?;
        let path = entry.path();
        if let Some(base) = parse_segment_base(&path) {
            segs.push((base, path));
        }
    }
    segs.sort_unstable_by_key(|(b, _)| *b);
    Ok(segs)
}

fn sync_dir(dir: &Path) -> Result<(), DurabilityError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_err(format!("fsync dir {}", dir.display())))
}

/// Outcome of scanning one segment file.
struct SegmentScan {
    /// Number of whole, checksummed frames.
    records: u64,
    /// Byte offset just past the last whole frame.
    valid_len: u64,
    /// A partial frame follows `valid_len`.
    torn: bool,
}

/// Scan a segment, verifying every frame checksum. `f` is called with each
/// payload. Stops at a torn tail (reported in the result); fails on a bad
/// checksum or an absurd length.
fn scan_segment(path: &Path, mut f: impl FnMut(&[u8])) -> Result<SegmentScan, DurabilityError> {
    let data = fs::read(path).map_err(io_err(format!("read segment {}", path.display())))?;
    let mut rest: &[u8] = &data;
    let mut records = 0u64;
    loop {
        // Byte offset of the frame being examined (frames already
        // consumed have been split off the front of `rest`).
        let pos = data.len() - rest.len();
        let scan = |torn| SegmentScan {
            records,
            valid_len: pos as u64,
            torn,
        };
        if rest.is_empty() {
            return Ok(scan(false));
        }
        let Some((len_bytes, after_len)) = rest.split_first_chunk::<4>() else {
            return Ok(scan(true));
        };
        let Some((crc_bytes, body)) = after_len.split_first_chunk::<4>() else {
            return Ok(scan(true));
        };
        let len = u32::from_le_bytes(*len_bytes);
        let crc = u32::from_le_bytes(*crc_bytes);
        if len > MAX_RECORD {
            return Err(DurabilityError::Corrupt {
                file: path.to_path_buf(),
                msg: format!("frame length {len} at offset {pos} exceeds maximum"),
            });
        }
        let Some((payload, next)) = body.split_at_checked(len as usize) else {
            return Ok(scan(true));
        };
        if crc32(payload) != crc {
            return Err(DurabilityError::BadChecksum {
                file: path.to_path_buf(),
                offset: pos as u64,
            });
        }
        f(payload);
        records += 1;
        rest = next;
    }
}

/// Append handle over a segmented WAL directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    writer: BufWriter<File>,
    /// Base record index of the live segment.
    segment_base: u64,
    /// Bytes written to the live segment.
    segment_len: u64,
    /// Global index the next appended record will get.
    next_index: u64,
    segment_bytes: u64,
    fsync: FsyncPolicy,
    /// Completion time of the last fsync (group-commit bookkeeping).
    last_sync: Instant,
    /// Set after any write/flush failure: the BufWriter may hold a partial
    /// frame, so further appends could corrupt the log mid-segment. All
    /// subsequent writes fail until the WAL is reopened (which truncates
    /// the on-disk tail to the last whole frame).
    poisoned: bool,
}

impl Wal {
    /// Open (or create) the WAL in `dir`. Repairs a torn tail left by a
    /// crash mid-append by truncating the last segment to its last whole
    /// frame. Fails on checksum corruption.
    pub fn open(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
        fsync: FsyncPolicy,
    ) -> Result<Wal, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err(format!("create dir {}", dir.display())))?;
        let segs = list_segments(&dir)?;
        let (segment_base, next_index, segment_len, path) = match segs.last() {
            None => (0, 0, 0, segment_path(&dir, 0)),
            Some((base, path)) => {
                let scan = scan_segment(path, |_| {})?;
                if scan.torn {
                    // Crash artifact: drop the partial frame.
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(io_err(format!("open {}", path.display())))?;
                    f.set_len(scan.valid_len)
                        .map_err(io_err(format!("truncate {}", path.display())))?;
                    f.sync_all()
                        .map_err(io_err(format!("fsync {}", path.display())))?;
                }
                (*base, base + scan.records, scan.valid_len, path.clone())
            }
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err(format!("open segment {}", path.display())))?;
        Ok(Wal {
            dir,
            writer: BufWriter::new(file),
            segment_base,
            segment_len,
            next_index,
            segment_bytes: segment_bytes.max(FRAME_HEADER as u64 + 1),
            fsync,
            last_sync: Instant::now(),
            poisoned: false,
        })
    }

    /// Directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Global index the next appended record will receive.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Append one record, returning its global index. The record is durable
    /// once the segment rotates, [`sync`](Self::sync) is called, or the
    /// [`FsyncPolicy`] forces a sync (every append, or the group-commit
    /// interval elapsing).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, DurabilityError> {
        self.check_poisoned()?;
        let idx = self.next_index;
        let len = payload.len() as u32;
        self.writer
            .write_all(&len.to_le_bytes())
            .and_then(|_| self.writer.write_all(&crc32(payload).to_le_bytes()))
            .and_then(|_| self.writer.write_all(payload))
            .map_err(|e| {
                self.poisoned = true;
                io_err("append WAL record")(e)
            })?;
        self.next_index += 1;
        self.segment_len += FRAME_HEADER as u64 + payload.len() as u64;
        match self.fsync {
            FsyncPolicy::EachAppend => self.sync()?,
            FsyncPolicy::GroupCommit(ms) => {
                if self.last_sync.elapsed() >= Duration::from_millis(ms) {
                    self.sync()?;
                }
            }
            FsyncPolicy::AtCheckpoint => {}
        }
        if self.segment_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(idx)
    }

    /// Flush and fsync the live segment.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.check_poisoned()?;
        self.writer.flush().map_err(|e| {
            self.poisoned = true;
            io_err("flush WAL")(e)
        })?;
        self.writer
            .get_ref()
            .sync_all()
            .map_err(io_err("fsync WAL segment"))?;
        self.last_sync = Instant::now();
        Ok(())
    }

    fn check_poisoned(&self) -> Result<(), DurabilityError> {
        if self.poisoned {
            return Err(DurabilityError::Poisoned(format!(
                "an earlier write to {} failed; reopen the WAL to repair and continue",
                self.dir.display()
            )));
        }
        Ok(())
    }

    /// Seal the live segment (fsync) and start a new one.
    fn rotate(&mut self) -> Result<(), DurabilityError> {
        self.sync()?;
        self.segment_base = self.next_index;
        self.segment_len = 0;
        let path = segment_path(&self.dir, self.segment_base);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err(format!("open segment {}", path.display())))?;
        self.writer = BufWriter::new(file);
        sync_dir(&self.dir)
    }

    /// Delete every sealed segment whose records all have index < `index`
    /// (they are covered by a snapshot). The live segment always survives.
    pub fn truncate_segments_before(&mut self, index: u64) -> Result<usize, DurabilityError> {
        self.writer.flush().map_err(io_err("flush WAL"))?;
        let segs = list_segments(&self.dir)?;
        let mut removed = 0;
        for w in segs.windows(2) {
            let [(base, path), (next_base, _)] = w else {
                continue;
            };
            // Segment covers [base, next_base).
            if *next_base <= index && *base < self.segment_base {
                fs::remove_file(path)
                    .map_err(io_err(format!("remove segment {}", path.display())))?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Replay records with global index ≥ `from_index`, in order, calling
    /// `f(index, payload)` for each. Returns the index one past the last
    /// replayed record. `tail` selects whether a partial final frame (crash
    /// artifact) is tolerated or an error; a bad checksum or a gap between
    /// segments is always an error.
    pub fn replay(
        dir: impl AsRef<Path>,
        from_index: u64,
        tail: TailPolicy,
        mut f: impl FnMut(u64, &[u8]),
    ) -> Result<u64, DurabilityError> {
        let dir = dir.as_ref();
        let segs = list_segments(dir)?;
        let first_base = match segs.first() {
            Some((base, _)) => *base,
            None => return Ok(from_index),
        };
        if from_index < first_base {
            return Err(DurabilityError::NothingToRecover(format!(
                "WAL starts at record {first_base} but replay needs record {from_index}"
            )));
        }
        let mut idx = first_base;
        for (si, (base, path)) in segs.iter().enumerate() {
            if *base != idx {
                return Err(DurabilityError::Corrupt {
                    file: path.clone(),
                    msg: format!("segment gap: expected base {idx}, found {base}"),
                });
            }
            let last = si + 1 == segs.len();
            let scan = scan_segment(path, |payload| {
                if idx >= from_index {
                    f(idx, payload);
                }
                idx += 1;
            })?;
            if scan.torn && (!last || tail == TailPolicy::Error) {
                return Err(DurabilityError::TruncatedFrame {
                    file: path.clone(),
                    offset: scan.valid_len,
                });
            }
        }
        Ok(idx)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("greta-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn collect(
        dir: &Path,
        from: u64,
        tail: TailPolicy,
    ) -> Result<Vec<(u64, Vec<u8>)>, DurabilityError> {
        let mut out = Vec::new();
        Wal::replay(dir, from, tail, |i, p| out.push((i, p.to_vec())))?;
        Ok(out)
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut wal = Wal::open(&dir, 1 << 20, FsyncPolicy::AtCheckpoint).unwrap();
        for i in 0..100u64 {
            let idx = wal.append(format!("rec-{i}").as_bytes()).unwrap();
            assert_eq!(idx, i);
        }
        wal.sync().unwrap();
        let recs = collect(&dir, 0, TailPolicy::Error).unwrap();
        assert_eq!(recs.len(), 100);
        assert_eq!(recs[42], (42, b"rec-42".to_vec()));
        // Replay from an offset skips the prefix.
        let tail = collect(&dir, 97, TailPolicy::Error).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].0, 97);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_creates_segments_and_reopen_continues_indices() {
        let dir = tmpdir("rotate");
        {
            let mut wal = Wal::open(&dir, 64, FsyncPolicy::AtCheckpoint).unwrap(); // tiny segments
            for i in 0..50u64 {
                wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
            }
        }
        let segs = list_segments(&dir).unwrap();
        assert!(
            segs.len() > 1,
            "expected rotation, got {} segment(s)",
            segs.len()
        );
        // Reopen continues where it left off.
        let mut wal = Wal::open(&dir, 64, FsyncPolicy::AtCheckpoint).unwrap();
        assert_eq!(wal.next_index(), 50);
        wal.append(b"after-reopen").unwrap();
        wal.sync().unwrap();
        let recs = collect(&dir, 0, TailPolicy::Error).unwrap();
        assert_eq!(recs.len(), 51);
        assert_eq!(recs[50].1, b"after-reopen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_a_clean_error_and_tolerated_when_asked() {
        let dir = tmpdir("torn");
        {
            let mut wal = Wal::open(&dir, 1 << 20, FsyncPolicy::AtCheckpoint).unwrap();
            for i in 0..10u64 {
                wal.append(format!("rec-{i}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
        }
        // Chop bytes off the tail: a torn frame.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        // Strict: clean error, not a panic.
        let err = collect(&dir, 0, TailPolicy::Error).unwrap_err();
        assert!(
            matches!(err, DurabilityError::TruncatedFrame { .. }),
            "{err}"
        );
        // Lenient: the whole frames before the tear replay fine.
        let recs = collect(&dir, 0, TailPolicy::Tolerate).unwrap();
        assert_eq!(recs.len(), 9);
        // Reopen repairs the tail and appends continue at the right index.
        let mut wal = Wal::open(&dir, 1 << 20, FsyncPolicy::AtCheckpoint).unwrap();
        assert_eq!(wal.next_index(), 9);
        wal.append(b"after-repair").unwrap();
        wal.sync().unwrap();
        let recs = collect(&dir, 0, TailPolicy::Error).unwrap();
        assert_eq!(recs.len(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_checksum_is_a_clean_error_everywhere() {
        let dir = tmpdir("crc");
        {
            let mut wal = Wal::open(&dir, 1 << 20, FsyncPolicy::AtCheckpoint).unwrap();
            for i in 0..5u64 {
                wal.append(format!("rec-{i}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        // Flip one payload byte of the second record.
        let mut data = fs::read(&path).unwrap();
        let second = (FRAME_HEADER + 5) + FRAME_HEADER + 2;
        data[second] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        for tail in [TailPolicy::Tolerate, TailPolicy::Error] {
            let err = collect(&dir, 0, tail).unwrap_err();
            assert!(matches!(err, DurabilityError::BadChecksum { .. }), "{err}");
        }
        // Opening for append also refuses.
        assert!(Wal::open(&dir, 1 << 20, FsyncPolicy::AtCheckpoint).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_zero_syncs_every_append() {
        // GroupCommit(0): the interval has always elapsed, so every append
        // flushes + fsyncs — records are replayable with no explicit sync.
        let dir = tmpdir("group-commit");
        let mut wal = Wal::open(&dir, 1 << 20, FsyncPolicy::GroupCommit(0)).unwrap();
        for i in 0..5u64 {
            wal.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        // No wal.sync(), no drop: the frames must already be on disk.
        let recs = collect(&dir, 0, TailPolicy::Error).unwrap();
        assert_eq!(recs.len(), 5);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_long_interval_defers_to_checkpoint_sync() {
        // A very long interval behaves like AtCheckpoint until sync().
        let dir = tmpdir("group-commit-long");
        let mut wal = Wal::open(&dir, 1 << 20, FsyncPolicy::GroupCommit(3_600_000)).unwrap();
        for i in 0..5u64 {
            wal.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        // Records may still sit in the BufWriter; an explicit sync (what a
        // checkpoint does) makes them all replayable.
        wal.sync().unwrap();
        let recs = collect(&dir, 0, TailPolicy::Error).unwrap();
        assert_eq!(recs.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn each_append_policy_is_durable_per_record() {
        let dir = tmpdir("each-append");
        let mut wal = Wal::open(&dir, 1 << 20, FsyncPolicy::EachAppend).unwrap();
        wal.append(b"one").unwrap();
        let recs = collect(&dir, 0, TailPolicy::Error).unwrap();
        assert_eq!(recs.len(), 1);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_segments_before_keeps_needed_tail() {
        let dir = tmpdir("truncate");
        let mut wal = Wal::open(&dir, 64, FsyncPolicy::AtCheckpoint).unwrap();
        for i in 0..60u64 {
            wal.append(format!("payload-{i:04}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        let removed = wal.truncate_segments_before(30).unwrap();
        assert!(removed > 0);
        assert_eq!(list_segments(&dir).unwrap().len(), before - removed);
        // Everything from index 30 on still replays.
        let recs = collect(&dir, 30, TailPolicy::Error).unwrap();
        assert_eq!(recs.len(), 30);
        assert_eq!(recs[0].0, 30);
        // Replaying a pre-truncation index is a clean error.
        assert!(collect(&dir, 0, TailPolicy::Error).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
