//! CRC-32 (IEEE 802.3 polynomial, reflected) — the frame checksum of the
//! WAL and snapshot files. Table-driven, dependency-free.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // lint:allow(panic): `i < 256` loop bound; const-evaluated, a bad index is a compile error
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // lint:allow(panic): index is masked with `& 0xFF` and TABLE has 256 entries
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
