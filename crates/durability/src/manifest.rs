//! Recovery manifest: the single source of truth for "where to restart".
//!
//! One fixed-size record `{snapshot epoch, WAL record index, shard count}`,
//! rewritten atomically (temp + rename) after every checkpoint. Recovery
//! loads the manifest, restores the snapshot of `epoch`, and replays WAL
//! records with index ≥ `wal_index`. Until the first checkpoint there is no
//! manifest, and recovery replays the WAL from record 0 into fresh state.

use crate::crc::crc32;
use crate::error::{io_err, DurabilityError};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"GMAN";
const VERSION: u8 = 1;
const BODY_LEN: usize = 20; // epoch + wal_index + shards

/// The durable recovery point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Snapshot epoch to restore.
    pub epoch: u64,
    /// First WAL record index *not* covered by the snapshot.
    pub wal_index: u64,
    /// Shard count the snapshot was taken with. Descriptive, not binding:
    /// recovery may repartition the snapshot's per-group state onto a
    /// different shard count (`StreamExecutor::recover` resharding); the
    /// field tells it how many per-shard state blobs the snapshot holds.
    pub shards: u32,
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

impl Manifest {
    /// Atomically persist this manifest in `dir`.
    pub fn store(&self, dir: &Path) -> Result<(), DurabilityError> {
        let mut body = Vec::with_capacity(BODY_LEN);
        body.extend_from_slice(&self.epoch.to_le_bytes());
        body.extend_from_slice(&self.wal_index.to_le_bytes());
        body.extend_from_slice(&self.shards.to_le_bytes());
        let mut buf = Vec::with_capacity(9 + BODY_LEN);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        buf.extend_from_slice(&body);

        let path = manifest_path(dir);
        let tmp = path.with_extension("tmp");
        let mut f = File::create(&tmp).map_err(io_err(format!("create {}", tmp.display())))?;
        f.write_all(&buf)
            .and_then(|_| f.sync_all())
            .map_err(io_err(format!("write {}", tmp.display())))?;
        drop(f);
        fs::rename(&tmp, &path).map_err(io_err(format!(
            "rename {} -> {}",
            tmp.display(),
            path.display()
        )))?;
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err(format!("fsync dir {}", dir.display())))
    }

    /// Load the manifest from `dir`, `Ok(None)` when none was written yet.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, DurabilityError> {
        let path = manifest_path(dir);
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(format!("read {}", path.display()))(e)),
        };
        let corrupt = |msg: &str| DurabilityError::Corrupt {
            file: path.clone(),
            msg: msg.to_string(),
        };
        if data.len() != 9 + BODY_LEN {
            return Err(corrupt("malformed manifest"));
        }
        let Some((magic, rest)) = data.split_first_chunk::<4>() else {
            return Err(corrupt("malformed manifest"));
        };
        if magic != MAGIC {
            return Err(corrupt("malformed manifest"));
        }
        let Some((&[version], rest)) = rest.split_first_chunk::<1>() else {
            return Err(corrupt("malformed manifest"));
        };
        if version != VERSION {
            return Err(corrupt(&format!("unsupported manifest version {version}")));
        }
        let Some((crc_bytes, body)) = rest.split_first_chunk::<4>() else {
            return Err(corrupt("malformed manifest"));
        };
        if crc32(body) != u32::from_le_bytes(*crc_bytes) {
            return Err(DurabilityError::BadChecksum {
                file: path,
                offset: 9,
            });
        }
        let Some((epoch, body)) = body.split_first_chunk::<8>() else {
            return Err(corrupt("manifest body too short"));
        };
        let Some((wal_index, body)) = body.split_first_chunk::<8>() else {
            return Err(corrupt("manifest body too short"));
        };
        let Some((shards, _)) = body.split_first_chunk::<4>() else {
            return Err(corrupt("manifest body too short"));
        };
        Ok(Some(Manifest {
            epoch: u64::from_le_bytes(*epoch),
            wal_index: u64::from_le_bytes(*wal_index),
            shards: u32::from_le_bytes(*shards),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_overwrite() {
        let dir = std::env::temp_dir().join(format!("greta-manifest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let m1 = Manifest {
            epoch: 1,
            wal_index: 100,
            shards: 4,
        };
        m1.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m1));
        let m2 = Manifest {
            epoch: 2,
            wal_index: 250,
            shards: 4,
        };
        m2.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m2));
        // Corruption is a clean error.
        let mut data = fs::read(manifest_path(&dir)).unwrap();
        data[12] ^= 0xFF;
        fs::write(manifest_path(&dir), &data).unwrap();
        assert!(Manifest::load(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
