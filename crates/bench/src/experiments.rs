//! Experiment definitions: one function per paper figure (§10.2–§10.4),
//! plus the §8 complexity check and the DESIGN.md ablations.
//!
//! Event counts are scaled to laptop budgets (the two-step baselines are
//! exponential; the paper itself reports them failing to terminate at
//! larger sizes — our budget mechanism reproduces exactly that behaviour,
//! shown as `DNF` in the tables).

use crate::metrics::{run_greta, run_greta_parallel, run_two_step_engine, Metrics, TwoStep};
use greta_core::EngineConfig;
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{
    ClusterConfig, ClusterGen, LinearRoadConfig, LinearRoadGen, StockConfig, StockGen,
};

/// One table row: an engine measured at one sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment id (`fig14`, …).
    pub figure: String,
    /// Name of the swept parameter.
    pub x_name: String,
    /// Swept parameter value.
    pub x: f64,
    /// The measurements.
    pub metrics: Metrics,
}

fn push(rows: &mut Vec<Row>, figure: &str, x_name: &str, x: f64, m: Metrics) {
    rows.push(Row {
        figure: figure.into(),
        x_name: x_name.into(),
        x,
        metrics: m,
    });
}

#[allow(clippy::too_many_arguments)]
fn all_engines(
    rows: &mut Vec<Row>,
    figure: &str,
    x_name: &str,
    x: f64,
    query: &CompiledQuery,
    reg: &SchemaRegistry,
    events: &[Event],
    budget: u64,
) {
    push(
        rows,
        figure,
        x_name,
        x,
        run_greta(query, reg, events, EngineConfig::default()),
    );
    for which in [TwoStep::Sase, TwoStep::Cet, TwoStep::Flink] {
        push(
            rows,
            figure,
            x_name,
            x,
            run_two_step_engine(which, query, reg, events, budget),
        );
    }
}

/// Query Q1 (§1) with a tumbling window of `n` ticks (= `n` events per
/// window under per-event time stamps).
fn q1(reg: &SchemaRegistry, n: usize) -> CompiledQuery {
    CompiledQuery::parse(
        &format!(
            "RETURN sector, COUNT(*) PATTERN Stock S+ \
             WHERE [company, sector] AND S.price > NEXT(S).price \
             GROUP-BY sector WITHIN {n} SLIDE {n}"
        ),
        reg,
    )
    .expect("Q1 compiles")
}

/// **Fig. 14** — positive patterns over the stock stream, varying the
/// number of events per window.
pub fn fig14(sizes: &[usize], budget: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut reg = SchemaRegistry::new();
        let gen = StockGen::new(
            StockConfig {
                events: n,
                ..Default::default()
            },
            &mut reg,
        )
        .expect("schema");
        let events = gen.generate();
        let query = q1(&reg, n);
        all_engines(
            &mut rows,
            "fig14",
            "events/window",
            n as f64,
            &query,
            &reg,
            &events,
            budget,
        );
    }
    rows
}

/// **Fig. 15** — the same patterns with a trailing negative sub-pattern
/// (`SEQ(Stock S+, NOT Halt H)`), varying the number of events per window.
pub fn fig15(sizes: &[usize], budget: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut reg = SchemaRegistry::new();
        let gen = StockGen::new(
            StockConfig {
                events: n,
                halt_rate: 0.002,
                ..Default::default()
            },
            &mut reg,
        )
        .expect("schema");
        let events = gen.generate();
        let query = CompiledQuery::parse(
            &format!(
                "RETURN sector, COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H) \
                 WHERE [company, sector] AND S.price > NEXT(S).price \
                 GROUP-BY sector WITHIN {n} SLIDE {n}"
            ),
            &reg,
        )
        .expect("Q1-neg compiles");
        all_engines(
            &mut rows,
            "fig15",
            "events/window",
            n as f64,
            &query,
            &reg,
            &events,
            budget,
        );
    }
    rows
}

/// **Fig. 16** — positive patterns over the Linear Road stream, varying the
/// selectivity of the `P.speed > NEXT(P).speed` edge predicate (driven by
/// the slowdown bias of the speed walks).
pub fn fig16(n: usize, biases: &[f64], budget: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &bias in biases {
        let mut reg = SchemaRegistry::new();
        let gen = LinearRoadGen::new(
            LinearRoadConfig {
                events: n,
                slowdown_bias: bias,
                ..Default::default()
            },
            &mut reg,
        )
        .expect("schema");
        let events = gen.generate();
        let query = CompiledQuery::parse(
            &format!(
                "RETURN segment, COUNT(*), AVG(P.speed) PATTERN Position P+ \
                 WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
                 GROUP-BY segment WITHIN {n} SLIDE {n}"
            ),
            &reg,
        )
        .expect("Q3-positive compiles");
        all_engines(
            &mut rows,
            "fig16",
            "selectivity",
            bias,
            &query,
            &reg,
            &events,
            budget,
        );
    }
    rows
}

/// **Fig. 17** — query Q2 over the cluster stream, varying the number of
/// event trend groups (distinct mappers). Includes a parallel-GRETA series
/// for the §10.4 scalability claim.
pub fn fig17(n: usize, groups: &[u32], budget: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &g in groups {
        let mut reg = SchemaRegistry::new();
        let gen = ClusterGen::new(
            ClusterConfig {
                events: n,
                mappers: g,
                ..Default::default()
            },
            &mut reg,
        )
        .expect("schema");
        let events = gen.generate();
        let query = CompiledQuery::parse(
            &format!(
                "RETURN mapper, SUM(M.cpu) \
                 PATTERN SEQ(Start S, Measurement M+, End E) \
                 WHERE [job, mapper] AND M.load < NEXT(M).load \
                 GROUP-BY mapper WITHIN {n} SLIDE {n}"
            ),
            &reg,
        )
        .expect("Q2 compiles");
        all_engines(
            &mut rows, "fig17", "groups", g as f64, &query, &reg, &events, budget,
        );
        push(
            &mut rows,
            "fig17",
            "groups",
            g as f64,
            run_greta_parallel(&query, &reg, &events, EngineConfig::default(), 4),
        );
    }
    rows
}

/// **§8 complexity check** — GRETA-only sweep over n; downstream analysis
/// (EXPERIMENTS.md) fits the log–log slope: ≤ 2 for time, ≈ 1 for memory.
pub fn complexity(sizes: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut reg = SchemaRegistry::new();
        let gen = StockGen::new(
            StockConfig {
                events: n,
                ..Default::default()
            },
            &mut reg,
        )
        .expect("schema");
        let events = gen.generate();
        let query = q1(&reg, n);
        push(
            &mut rows,
            "complexity",
            "events/window",
            n as f64,
            run_greta(&query, &reg, &events, EngineConfig::default()),
        );
    }
    rows
}

/// **Ablations** (DESIGN.md): Vertex-Tree range index on/off, and window
/// sharing vs. per-window replication (emulated by running one tumbling
/// engine per slide offset).
pub fn ablations(n: usize) -> Vec<Row> {
    let mut rows = Vec::new();

    // (a) Range index on/off — Linear Road with a selective predicate.
    let mut reg = SchemaRegistry::new();
    let gen = LinearRoadGen::new(
        LinearRoadConfig {
            events: n,
            slowdown_bias: 0.25,
            ..Default::default()
        },
        &mut reg,
    )
    .expect("schema");
    let events = gen.generate();
    let query = CompiledQuery::parse(
        &format!(
            "RETURN segment, COUNT(*) PATTERN Position P+ \
             WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
             GROUP-BY segment WITHIN {n} SLIDE {n}"
        ),
        &reg,
    )
    .expect("compiles");
    let mut m = run_greta(&query, &reg, &events, EngineConfig::default());
    m.engine = "GRETA(tree-index)".into();
    push(&mut rows, "ablation-index", "n", n as f64, m);
    let mut m = run_greta(
        &query,
        &reg,
        &events,
        EngineConfig {
            use_range_index: false,
            ..Default::default()
        },
    );
    m.engine = "GRETA(scan)".into();
    push(&mut rows, "ablation-index", "n", n as f64, m);

    // (b) Window sharing vs replication: WITHIN n/2 SLIDE n/8 — one shared
    // engine vs four shifted tumbling engines (Fig. 9(a) vs 9(b)).
    let within = (n / 2).max(8);
    let slide = (n / 8).max(2);
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: n,
            ..Default::default()
        },
        &mut reg,
    )
    .expect("schema");
    let events = gen.generate();
    let shared = CompiledQuery::parse(
        &format!(
            "RETURN sector, COUNT(*) PATTERN Stock S+ \
             WHERE [company, sector] AND S.price > NEXT(S).price \
             GROUP-BY sector WITHIN {within} SLIDE {slide}"
        ),
        &reg,
    )
    .expect("compiles");
    let mut m = run_greta(&shared, &reg, &events, EngineConfig::default());
    m.engine = "GRETA(shared-windows)".into();
    push(&mut rows, "ablation-windows", "n", n as f64, m);

    // Replication: each window offset processed by its own tumbling engine
    // over the events shifted into its phase (the naive Fig. 9(a) plan).
    let t0 = std::time::Instant::now();
    let mut total_mem = 0usize;
    let mut checksum = 0.0;
    let mut n_rows = 0usize;
    let phases = (within / slide).max(1);
    for phase in 0..phases {
        let tumbling = CompiledQuery::parse(
            &format!(
                "RETURN sector, COUNT(*) PATTERN Stock S+ \
                 WHERE [company, sector] AND S.price > NEXT(S).price \
                 GROUP-BY sector WITHIN {within} SLIDE {within}"
            ),
            &reg,
        )
        .expect("compiles");
        // Shift: drop events before this phase offset so tumbling windows
        // align with the shared plan's windows of the same phase.
        let offset = (phase * slide) as u64;
        let shifted: Vec<Event> = events
            .iter()
            .filter(|e| e.time.ticks() >= offset)
            .cloned()
            .collect();
        let m = run_greta(&tumbling, &reg, &shifted, EngineConfig::default());
        total_mem += m.memory_bytes;
        checksum += m.checksum;
        n_rows += m.rows;
    }
    let total = t0.elapsed().as_secs_f64() * 1e3;
    push(
        &mut rows,
        "ablation-windows",
        "n",
        n as f64,
        Metrics {
            engine: "GRETA(replicated-windows)".into(),
            total_ms: total,
            latency_ms: total,
            throughput: (events.len() * phases) as f64 / (total / 1e3).max(1e-9),
            memory_bytes: total_mem,
            completed: true,
            checksum,
            rows: n_rows,
        },
    );
    rows
}

/// Render rows as an aligned, paper-style text table, one block per figure.
pub fn render_table(rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut figures: Vec<&str> = rows.iter().map(|r| r.figure.as_str()).collect();
    figures.dedup();
    let mut seen = std::collections::HashSet::new();
    for fig in figures {
        if !seen.insert(fig) {
            continue;
        }
        writeln!(out, "\n== {fig} ==").unwrap();
        writeln!(
            out,
            "{:<14} {:>12} {:<22} {:>12} {:>12} {:>14} {:>12} {:>6}",
            "x-name", "x", "engine", "latency_ms", "total_ms", "throughput", "memory", "ok"
        )
        .unwrap();
        for r in rows.iter().filter(|r| r.figure == fig) {
            writeln!(
                out,
                "{:<14} {:>12} {:<22} {:>12.2} {:>12.2} {:>14.0} {:>12} {:>6}",
                r.x_name,
                r.x,
                r.metrics.engine,
                r.metrics.latency_ms,
                r.metrics.total_ms,
                r.metrics.throughput,
                human_bytes(r.metrics.memory_bytes),
                if r.metrics.completed { "yes" } else { "DNF" }
            )
            .unwrap();
        }
    }
    out
}

/// Render rows as a pretty-printed JSON array with flattened metrics
/// (what `--json` dumps for EXPERIMENTS.md; no external JSON dependency).
pub fn rows_to_json(rows: &[Row]) -> String {
    use greta_workloads::io::json::str_lit;
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "null".into()
        }
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"figure\": {}, \"x_name\": {}, \"x\": {}, \"engine\": {}, \
             \"total_ms\": {}, \"latency_ms\": {}, \"throughput\": {}, \
             \"memory_bytes\": {}, \"completed\": {}, \"checksum\": {}, \"rows\": {}}}",
            str_lit(&r.figure),
            str_lit(&r.x_name),
            num(r.x),
            str_lit(&r.metrics.engine),
            num(r.metrics.total_ms),
            num(r.metrics.latency_ms),
            num(r.metrics.throughput),
            r.metrics.memory_bytes,
            r.metrics.completed,
            num(r.metrics.checksum),
            r.metrics.rows,
        ));
    }
    out.push_str("\n]\n");
    out
}

fn human_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_small_runs_and_engines_agree() {
        let rows = fig14(&[120], 2_000_000);
        assert_eq!(rows.len(), 4); // GRETA + 3 baselines
        let greta = &rows[0];
        assert_eq!(greta.metrics.engine, "GRETA");
        for r in &rows[1..] {
            assert!(r.metrics.completed, "{} DNF", r.metrics.engine);
            let rel = (r.metrics.checksum - greta.metrics.checksum).abs()
                / greta.metrics.checksum.abs().max(1.0);
            assert!(
                rel < 1e-9,
                "{} checksum {} vs {}",
                r.metrics.engine,
                r.metrics.checksum,
                greta.metrics.checksum
            );
        }
    }

    #[test]
    fn fig15_negation_runs() {
        let rows = fig15(&[120], 2_000_000);
        let greta = &rows[0];
        for r in &rows[1..] {
            if r.metrics.completed {
                let rel = (r.metrics.checksum - greta.metrics.checksum).abs()
                    / greta.metrics.checksum.abs().max(1.0);
                assert!(rel < 1e-9, "{}", r.metrics.engine);
            }
        }
    }

    #[test]
    fn fig16_and_fig17_run_small() {
        let r16 = fig16(150, &[0.3], 2_000_000);
        assert_eq!(r16.len(), 4);
        let r17 = fig17(150, &[3], 2_000_000);
        assert_eq!(r17.len(), 5); // + GRETA-par4
        let greta = &r17[0];
        let par = r17
            .iter()
            .find(|r| r.metrics.engine.starts_with("GRETA-par"))
            .unwrap();
        let rel = (par.metrics.checksum - greta.metrics.checksum).abs()
            / greta.metrics.checksum.abs().max(1.0);
        assert!(rel < 1e-9);
    }

    #[test]
    fn ablations_agree() {
        let rows = ablations(300);
        let tree = rows
            .iter()
            .find(|r| r.metrics.engine.contains("tree"))
            .unwrap();
        let scan = rows
            .iter()
            .find(|r| r.metrics.engine.contains("scan"))
            .unwrap();
        assert_eq!(tree.metrics.checksum, scan.metrics.checksum);
        let table = render_table(&rows);
        assert!(table.contains("ablation-index"));
        assert!(table.contains("ablation-windows"));
    }

    #[test]
    fn complexity_rows() {
        let rows = complexity(&[100, 200]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.metrics.completed));
    }
}
