//! # greta-bench
//!
//! Benchmark harness regenerating **every figure** of the GRETA evaluation
//! (paper §10) plus the ablations called out in DESIGN.md:
//!
//! | experiment | paper artifact | sweep |
//! |------------|----------------|-------|
//! | `fig14`    | Fig. 14 (latency/memory/throughput, positive patterns, stock) | events per window |
//! | `fig15`    | Fig. 15 (same, with negative sub-patterns) | events per window |
//! | `fig16`    | Fig. 16 (edge-predicate selectivity, Linear Road) | selectivity |
//! | `fig17`    | Fig. 17 (number of trend groups, cluster) | groups |
//! | `complexity` | §8 claims | n (GRETA only; slope check) |
//! | `ablations` | DESIGN.md design choices | index/carrier/window sharing |
//!
//! Run `cargo run --release -p greta-bench --bin harness -- all` for the
//! paper-style tables, or the criterion benches (`cargo bench`) for
//! statistically rigorous micro-timings at small sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;

pub use experiments::{
    ablations, complexity, fig14, fig15, fig16, fig17, render_table, rows_to_json, Row,
};
pub use metrics::{run_greta, run_greta_parallel, run_two_step_engine, Metrics, TwoStep};
