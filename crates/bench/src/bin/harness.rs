//! Paper-style experiment harness.
//!
//! ```text
//! harness [fig14] [fig15] [fig16] [fig17] [complexity] [ablations] [all]
//!         [--scale small|medium|large] [--json PATH]
//! ```
//!
//! Prints one table per experiment (latency / total time / throughput /
//! peak memory / DNF markers — the three metrics of paper §10.1) and
//! optionally dumps the raw rows as JSON for EXPERIMENTS.md.

use greta_bench::{ablations, complexity, fig14, fig15, fig16, fig17, render_table, Row};

struct Scale {
    fig14_sizes: Vec<usize>,
    fig15_sizes: Vec<usize>,
    fig16_n: usize,
    fig17_n: usize,
    complexity_sizes: Vec<usize>,
    ablation_n: usize,
    budget: u64,
}

impl Scale {
    fn by_name(name: &str) -> Scale {
        match name {
            "small" => Scale {
                fig14_sizes: vec![100, 200, 400],
                fig15_sizes: vec![100, 200, 400],
                fig16_n: 400,
                fig17_n: 400,
                complexity_sizes: vec![250, 500, 1000, 2000],
                ablation_n: 400,
                budget: 2_000_000,
            },
            "large" => Scale {
                fig14_sizes: vec![250, 500, 1000, 2500, 5000, 10_000, 50_000],
                fig15_sizes: vec![250, 500, 1000, 2500, 5000, 10_000, 50_000],
                fig16_n: 10_000,
                fig17_n: 50_000,
                complexity_sizes: vec![1000, 2000, 4000, 8000, 16_000, 32_000, 64_000],
                ablation_n: 10_000,
                budget: 50_000_000,
            },
            _ => Scale {
                fig14_sizes: vec![150, 300, 600, 1200, 2400],
                fig15_sizes: vec![150, 300, 600, 1200, 2400],
                fig16_n: 2000,
                fig17_n: 5000,
                complexity_sizes: vec![500, 1000, 2000, 4000, 8000, 16_000],
                ablation_n: 2000,
                budget: 10_000_000,
            },
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = "medium".to_string();
    let mut json_path: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale_name = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            other => {
                experiments.push(other.to_string());
                i += 1;
            }
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = vec![
            "fig14".into(),
            "fig15".into(),
            "fig16".into(),
            "fig17".into(),
            "complexity".into(),
            "ablations".into(),
        ];
    }
    let scale = Scale::by_name(&scale_name);
    eprintln!(
        "# GRETA experiment harness — scale `{scale_name}`, budget {} trends",
        scale.budget
    );

    let mut rows: Vec<Row> = Vec::new();
    for exp in &experiments {
        eprintln!("running {exp} …");
        match exp.as_str() {
            "fig14" => rows.extend(fig14(&scale.fig14_sizes, scale.budget)),
            "fig15" => rows.extend(fig15(&scale.fig15_sizes, scale.budget)),
            "fig16" => rows.extend(fig16(scale.fig16_n, &[0.1, 0.25, 0.5, 0.75], scale.budget)),
            "fig17" => rows.extend(fig17(scale.fig17_n, &[1, 5, 10, 25, 50], scale.budget)),
            "complexity" => rows.extend(complexity(&scale.complexity_sizes)),
            "ablations" => rows.extend(ablations(scale.ablation_n)),
            other => eprintln!("unknown experiment `{other}` — skipping"),
        }
    }

    println!("{}", render_table(&rows));

    // §8 slope check when complexity rows are present.
    let cx: Vec<&Row> = rows.iter().filter(|r| r.figure == "complexity").collect();
    if cx.len() >= 3 {
        let slope = |ys: Vec<f64>| -> f64 {
            let xs: Vec<f64> = cx.iter().map(|r| r.x.ln()).collect();
            let ys: Vec<f64> = ys.iter().map(|y| y.max(1e-9).ln()).collect();
            let n = xs.len() as f64;
            let (sx, sy): (f64, f64) = (xs.iter().sum(), ys.iter().sum());
            let sxy: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
            let sxx: f64 = xs.iter().map(|a| a * a).sum();
            (n * sxy - sx * sy) / (n * sxx - sx * sx)
        };
        let t = slope(cx.iter().map(|r| r.metrics.total_ms).collect());
        let m = slope(cx.iter().map(|r| r.metrics.memory_bytes as f64).collect());
        println!("\n== §8 complexity fit (log–log slopes) ==");
        println!("time  slope ≈ {t:.2}   (Theorem 8.1: ≤ 2)");
        println!("space slope ≈ {m:.2}   (Theorem 8.1: ≈ 1)");
    }

    if let Some(path) = json_path {
        let json = greta_bench::rows_to_json(&rows);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
