//! Measurement of the paper's three metrics (§10.1):
//!
//! * **Latency** — time between the arrival of the last contributing event
//!   and the result output. For GRETA that is the final-flush duration
//!   (aggregates are maintained incrementally); for the two-step baselines
//!   it is the whole construct-then-aggregate phase.
//! * **Throughput** — events processed per second.
//! * **Memory** — peak bytes of engine state (analytic accounting via
//!   `MemoryFootprint` / `TwoStepRun::peak_bytes`).

use greta_baselines::{CetEngine, FlinkEngine, SaseEngine, TwoStepRun};
use greta_core::{EngineConfig, GretaEngine, MemoryFootprint};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use std::time::Instant;

/// One engine run's measurements.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Engine name (`GRETA`, `SASE`, `CET`, `FLINK`, …).
    pub engine: String,
    /// End-to-end wall time in milliseconds.
    pub total_ms: f64,
    /// Result latency in milliseconds (see module docs).
    pub latency_ms: f64,
    /// Events per second.
    pub throughput: f64,
    /// Peak engine state in bytes.
    pub memory_bytes: usize,
    /// False when the engine hit its trend budget ("fails to terminate").
    pub completed: bool,
    /// Sum over all result values (cross-engine sanity checksum).
    pub checksum: f64,
    /// Result rows produced.
    pub rows: usize,
}

fn checksum_rows<N: greta_core::TrendNum>(rows: &[greta_core::WindowResult<N>]) -> f64 {
    rows.iter()
        .flat_map(|r| r.values.iter())
        .map(|v| v.to_f64())
        .filter(|v| v.is_finite())
        .sum()
}

/// Run the GRETA engine over a batch.
pub fn run_greta(
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    events: &[Event],
    config: EngineConfig,
) -> Metrics {
    let mut engine =
        GretaEngine::<f64>::with_config(query.clone(), registry.clone(), config).expect("engine");
    let t0 = Instant::now();
    for e in events {
        engine.process(e).expect("in-order");
    }
    let mid = engine.poll_results();
    let t_flush = Instant::now();
    let mut rows = engine.finish();
    let total = t0.elapsed().as_secs_f64() * 1e3;
    let latency = t_flush.elapsed().as_secs_f64() * 1e3;
    let peak = engine.peak_memory_bytes().max(engine.memory_bytes());
    let n_rows = mid.len() + rows.len();
    let mut all = mid;
    all.append(&mut rows);
    Metrics {
        engine: "GRETA".into(),
        total_ms: total,
        latency_ms: latency,
        throughput: events.len() as f64 / (total / 1e3).max(1e-9),
        memory_bytes: peak,
        completed: true,
        checksum: checksum_rows(&all),
        rows: n_rows,
    }
}

/// Run GRETA with per-group parallelism (§10.4).
pub fn run_greta_parallel(
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    events: &[Event],
    config: EngineConfig,
    threads: usize,
) -> Metrics {
    let t0 = Instant::now();
    let rows = greta_core::parallel::run_parallel::<f64>(query, registry, config, events, threads)
        .expect("parallel run");
    let total = t0.elapsed().as_secs_f64() * 1e3;
    Metrics {
        engine: format!("GRETA-par{threads}"),
        total_ms: total,
        latency_ms: total, // batch API: results land at the end
        throughput: events.len() as f64 / (total / 1e3).max(1e-9),
        memory_bytes: 0, // per-worker peaks are not aggregated in batch mode
        completed: true,
        checksum: checksum_rows(&rows),
        rows: rows.len(),
    }
}

/// Which two-step baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoStep {
    /// SASE-style stacks + DFS.
    Sase,
    /// CET-style shared sub-trends.
    Cet,
    /// Flink-style flattened fixed-length queries.
    Flink,
}

impl TwoStep {
    /// Engine name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            TwoStep::Sase => "SASE",
            TwoStep::Cet => "CET",
            TwoStep::Flink => "FLINK",
        }
    }
}

/// Run one of the two-step baselines with a trend/node budget.
pub fn run_two_step_engine(
    which: TwoStep,
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    events: &[Event],
    budget: u64,
) -> Metrics {
    let t0 = Instant::now();
    let run: TwoStepRun = match which {
        TwoStep::Sase => SaseEngine::run(query, registry, events, budget),
        TwoStep::Cet => CetEngine::run(query, registry, events, budget),
        TwoStep::Flink => FlinkEngine::run(query, registry, events, budget),
    };
    let total = t0.elapsed().as_secs_f64() * 1e3;
    Metrics {
        engine: which.name().into(),
        total_ms: total,
        latency_ms: total, // two-step: nothing is available before the end
        throughput: events.len() as f64 / (total / 1e3).max(1e-9),
        memory_bytes: run.peak_bytes,
        completed: run.completed,
        checksum: checksum_rows(&run.rows),
        rows: run.rows.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{EventBuilder, Time};

    fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 1000 SLIDE 1000", &reg)
            .unwrap();
        let evs: Vec<Event> = (0..10u64)
            .map(|t| EventBuilder::new(&reg, "A").unwrap().at(Time(t)).build())
            .collect();
        (reg, q, evs)
    }

    #[test]
    fn engines_agree_on_checksum() {
        let (reg, q, evs) = setup();
        let g = run_greta(&q, &reg, &evs, EngineConfig::default());
        let s = run_two_step_engine(TwoStep::Sase, &q, &reg, &evs, u64::MAX);
        let c = run_two_step_engine(TwoStep::Cet, &q, &reg, &evs, u64::MAX);
        let f = run_two_step_engine(TwoStep::Flink, &q, &reg, &evs, u64::MAX);
        assert_eq!(g.checksum, 1023.0); // 2^10 - 1
        for m in [&s, &c, &f] {
            assert!(m.completed);
            assert_eq!(m.checksum, g.checksum, "{}", m.engine);
        }
        assert!(g.throughput > 0.0);
    }

    #[test]
    fn budget_marks_incomplete() {
        let (reg, q, evs) = setup();
        let m = run_two_step_engine(TwoStep::Sase, &q, &reg, &evs, 5);
        assert!(!m.completed);
    }

    #[test]
    fn parallel_matches() {
        let (reg, q, evs) = setup();
        let g = run_greta(&q, &reg, &evs, EngineConfig::default());
        let p = run_greta_parallel(&q, &reg, &evs, EngineConfig::default(), 2);
        assert_eq!(p.checksum, g.checksum);
    }
}
