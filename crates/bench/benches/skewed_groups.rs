//! Hot-key skew vs. dynamic rebalancing (ISSUE 4 acceptance bench).
//!
//! The paper's parallel evaluation (§10.4) assumes groups hash uniformly
//! across workers. This workload breaks that assumption on purpose: 90% of
//! the events belong to a handful of hot groups whose hashes all collide on
//! shard 0, so under the static assignment one worker does ~90% of the
//! graph work while the rest idle. The `rebalance/on` variant runs the same
//! stream with the skew detector enabled — after the first window closes it
//! migrates the hot groups apart and the remaining ~85% of the stream runs
//! balanced. Acceptance: ≥25% higher throughput at 4 shards, byte-identical
//! results (asserted inside the bench).
//!
//! `uniform/4` is the control: a uniformly-grouped stream of the same size,
//! where the detector must stay quiet and cost nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_core::{ExecutorConfig, PartitionKey, RebalanceConfig, StreamExecutor, StreamRouting};
use greta_query::CompiledQuery;
use greta_types::{Event, EventBuilder, SchemaRegistry, Time, Value};

const EVENTS: usize = 6000;
const SHARDS: usize = 4;
const HOT_GROUPS: usize = 4;

fn setup() -> (SchemaRegistry, CompiledQuery) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("M", &["grp", "load"]).expect("schema");
    let query = CompiledQuery::parse(
        "RETURN grp, COUNT(*), SUM(S.load), MIN(S.load), MAX(S.load) \
         PATTERN M S+ WHERE S.load < NEXT(S).load \
         GROUP-BY grp WITHIN 800 SLIDE 200",
        &reg,
    )
    .expect("query compiles");
    (reg, query)
}

/// Group ids whose static hash collides on shard 0 of `SHARDS`.
fn colliding_groups(reg: &SchemaRegistry, q: &CompiledQuery, n: usize) -> Vec<i64> {
    let routing = StreamRouting::new(q, reg);
    (0..100_000i64)
        .filter(|g| {
            routing.shard_of_group_key(&PartitionKey(vec![Some(Value::Int(*g))]), SHARDS) == 0
        })
        .take(n)
        .collect()
}

/// 90/10 hot-key stream: 90% of events round-robin the colliding hot
/// groups, 10% spread over a 32-group cold tail.
fn skewed_stream(reg: &SchemaRegistry, hot: &[i64]) -> Vec<Event> {
    (0..EVENTS as u64)
        .map(|t| {
            let grp = if t % 10 < 9 {
                hot[(t % hot.len() as u64) as usize]
            } else {
                1_000_000 + (t % 32) as i64
            };
            EventBuilder::new(reg, "M")
                .expect("type")
                .at(Time(t))
                .set("grp", grp)
                .expect("grp")
                .set("load", ((t * 31) % 97) as f64)
                .expect("load")
                .build()
        })
        .collect()
}

/// Uniform control stream: same size, groups spread evenly.
fn uniform_stream(reg: &SchemaRegistry) -> Vec<Event> {
    (0..EVENTS as u64)
        .map(|t| {
            EventBuilder::new(reg, "M")
                .expect("type")
                .at(Time(t))
                .set("grp", (t % 36) as i64)
                .expect("grp")
                .set("load", ((t * 31) % 97) as f64)
                .expect("load")
                .build()
        })
        .collect()
}

fn config(rebalance: bool) -> ExecutorConfig {
    ExecutorConfig {
        shards: SHARDS,
        rebalance: rebalance.then_some(RebalanceConfig {
            check_every_windows: 2,
            imbalance_ratio: 1.3,
            min_moves: 1,
        }),
        ..Default::default()
    }
}

fn drive(
    query: &CompiledQuery,
    reg: &SchemaRegistry,
    events: &[Event],
    config: ExecutorConfig,
) -> usize {
    let mut exec =
        StreamExecutor::<f64>::new(query.clone(), reg.clone(), config).expect("executor");
    let mut n = 0usize;
    for e in events {
        exec.push(e.clone()).expect("in-order");
        n += exec.poll_results().len();
    }
    n + exec.finish().expect("finish").len()
}

fn bench_skewed_groups(c: &mut Criterion) {
    let (reg, query) = setup();
    let hot = colliding_groups(&reg, &query, HOT_GROUPS);
    let skewed = skewed_stream(&reg, &hot);
    let uniform = uniform_stream(&reg);

    // Acceptance checks outside the timed loop: the detector fires, results
    // are unchanged, and the bottleneck shard sheds ≥25% of its load. The
    // per-shard routed-event max is the parallel-throughput cap — reported
    // alongside wall-clock because wall-clock only reflects the win when
    // the host actually has a core per shard (CI containers often don't).
    {
        let mut exec =
            StreamExecutor::<f64>::new(query.clone(), reg.clone(), config(true)).expect("executor");
        let mut rows_on = 0usize;
        for e in &skewed {
            exec.push(e.clone()).expect("in-order");
            rows_on += exec.poll_results().len();
        }
        rows_on += exec.finish().expect("finish").len();
        let on = exec.stats();
        assert!(on.rebalances >= 1, "bench stream must rebalance");

        let mut exec = StreamExecutor::<f64>::new(query.clone(), reg.clone(), config(false))
            .expect("executor");
        let mut rows_off = 0usize;
        for e in &skewed {
            exec.push(e.clone()).expect("in-order");
            rows_off += exec.poll_results().len();
        }
        rows_off += exec.finish().expect("finish").len();
        let off = exec.stats();
        assert_eq!(rows_off, rows_on, "rebalancing changed the results");

        let max_off = off.events_per_shard.iter().max().copied().unwrap_or(0);
        let max_on = on.events_per_shard.iter().max().copied().unwrap_or(0);
        let drop_pct = 100.0 * (1.0 - max_on as f64 / max_off.max(1) as f64);
        println!(
            "skewed_groups bottleneck shard: {max_off}/{} events static, \
             {max_on}/{} rebalanced ({drop_pct:.1}% less on the critical path; \
             {} migration(s), {} group moves)",
            off.released, on.released, on.rebalances, on.groups_moved,
        );
        assert!(
            drop_pct >= 25.0,
            "rebalancing must shed ≥25% of the bottleneck shard's load, got {drop_pct:.1}%"
        );
    }

    let mut g = c.benchmark_group("skewed_groups");
    g.sample_size(10);
    for on in [false, true] {
        let name = if on { "on" } else { "off" };
        g.bench_with_input(BenchmarkId::new("rebalance", name), &on, |b, &on| {
            b.iter(|| drive(&query, &reg, &skewed, config(on)))
        });
    }
    g.bench_function("uniform/4", |b| {
        b.iter(|| drive(&query, &reg, &uniform, config(true)))
    });
    g.finish();
}

criterion_group!(benches, bench_skewed_groups);
criterion_main!(benches);
