//! Micro-benchmarks of the core building blocks: per-event graph insertion
//! (the quadratic inner loop of Theorem 8.1), template compilation, and
//! bignum arithmetic for exact trend counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_bignum::BigUint;
use greta_core::{EngineConfig, GretaEngine};
use greta_query::CompiledQuery;
use greta_types::{EventBuilder, SchemaRegistry, Time};

fn bench_insert_throughput(c: &mut Criterion) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("A", &["x"]).unwrap();
    let mut g = c.benchmark_group("micro_graph_insert");
    g.sample_size(10);
    for n in [200u64, 400, 800] {
        let query = CompiledQuery::parse(
            &format!("RETURN COUNT(*) PATTERN A+ WITHIN {n} SLIDE {n}"),
            &reg,
        )
        .unwrap();
        let events: Vec<_> = (0..n)
            .map(|t| EventBuilder::new(&reg, "A").unwrap().at(Time(t)).build())
            .collect();
        g.bench_with_input(BenchmarkId::new("dense_kleene", n), &n, |b, _| {
            b.iter(|| {
                let mut e = GretaEngine::<f64>::with_config(
                    query.clone(),
                    reg.clone(),
                    EngineConfig::default(),
                )
                .unwrap();
                for ev in &events {
                    e.process(ev).unwrap();
                }
                e.finish().len()
            })
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut reg = SchemaRegistry::new();
    for t in ["A", "B", "C", "D", "E"] {
        reg.register_type(t, &["x", "y"]).unwrap();
    }
    let text = "RETURN COUNT(*), SUM(A.x) \
                PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ \
                WHERE [y] AND A.x < NEXT(A).x GROUP-BY y WITHIN 600 SLIDE 60";
    c.bench_function("micro_query_compile", |b| {
        b.iter(|| CompiledQuery::parse(text, &reg).unwrap())
    });
}

fn bench_bignum(c: &mut Criterion) {
    let mut big = BigUint::one();
    for _ in 0..1000 {
        big.mul_u64(3);
    }
    let other = big.clone();
    let mut g = c.benchmark_group("micro_bignum");
    g.bench_function("add_1000_limbs", |b| {
        b.iter(|| {
            let mut x = big.clone();
            x.add_assign_ref(&other);
            x
        })
    });
    g.bench_function("to_decimal_string", |b| b.iter(|| big.to_string()));
    g.finish();
}

criterion_group!(
    benches,
    bench_insert_throughput,
    bench_compile,
    bench_bignum
);
criterion_main!(benches);
