//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * Vertex-Tree range index vs linear scan with residual predicates
//!   (storage layer of Fig. 11);
//! * aggregate carrier: `f64` vs saturating `u64` vs exact `BigUint`;
//! * window sharing (one graph, per-window counts) vs replication
//!   (one tumbling engine per window phase, Fig. 9(a) vs 9(b)).

use criterion::{criterion_group, criterion_main, Criterion};
use greta_core::{EngineConfig, GretaEngine};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{LinearRoadConfig, LinearRoadGen, StockConfig, StockGen};

fn lr_setup(n: usize) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = LinearRoadGen::new(
        LinearRoadConfig {
            events: n,
            slowdown_bias: 0.25,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let query = CompiledQuery::parse(
        &format!(
            "RETURN segment, COUNT(*) PATTERN Position P+ \
             WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
             GROUP-BY segment WITHIN {n} SLIDE {n}"
        ),
        &reg,
    )
    .unwrap();
    (reg, query, events)
}

fn run<N: greta_core::TrendNum>(
    query: &CompiledQuery,
    reg: &SchemaRegistry,
    events: &[Event],
    config: EngineConfig,
) -> usize {
    let mut e = GretaEngine::<N>::with_config(query.clone(), reg.clone(), config).unwrap();
    for ev in events {
        e.process(ev).unwrap();
    }
    e.finish().len()
}

fn bench_index(c: &mut Criterion) {
    let (reg, query, events) = lr_setup(2000);
    let mut g = c.benchmark_group("ablation_index");
    g.sample_size(10);
    g.bench_function("tree_index", |b| {
        b.iter(|| run::<f64>(&query, &reg, &events, EngineConfig::default()))
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            run::<f64>(
                &query,
                &reg,
                &events,
                EngineConfig {
                    use_range_index: false,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

fn bench_carrier(c: &mut Criterion) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 1000,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 1000 SLIDE 1000",
        &reg,
    )
    .unwrap();
    let mut g = c.benchmark_group("ablation_carrier");
    g.sample_size(10);
    g.bench_function("f64", |b| {
        b.iter(|| run::<f64>(&query, &reg, &events, EngineConfig::default()))
    });
    g.bench_function("u64_saturating", |b| {
        b.iter(|| run::<u64>(&query, &reg, &events, EngineConfig::default()))
    });
    g.bench_function("biguint_exact", |b| {
        b.iter(|| run::<greta_bignum::BigUint>(&query, &reg, &events, EngineConfig::default()))
    });
    g.finish();
}

fn bench_window_sharing(c: &mut Criterion) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 1200,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let shared = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 600 SLIDE 150",
        &reg,
    )
    .unwrap();
    let tumbling = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 600 SLIDE 600",
        &reg,
    )
    .unwrap();
    let mut g = c.benchmark_group("ablation_window_sharing");
    g.sample_size(10);
    g.bench_function("shared_graph", |b| {
        b.iter(|| run::<f64>(&shared, &reg, &events, EngineConfig::default()))
    });
    g.bench_function("replicated_graphs_x4", |b| {
        b.iter(|| {
            // Naive plan of Fig. 9(a): one engine per window phase.
            let mut total = 0usize;
            for phase in 0..4u64 {
                let shifted: Vec<Event> = events
                    .iter()
                    .filter(|e| e.time.ticks() >= phase * 150)
                    .cloned()
                    .collect();
                total += run::<f64>(&tumbling, &reg, &shifted, EngineConfig::default());
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_index, bench_carrier, bench_window_sharing);
criterion_main!(benches);
