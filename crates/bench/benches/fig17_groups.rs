//! Criterion bench for **Fig. 17**: query Q2 over the cluster stream,
//! varying the number of event trend groups (distinct mappers). The
//! two-step engines improve with more groups (shorter trends per group);
//! GRETA stays flat (paper §10.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_bench::{run_greta, run_greta_parallel, run_two_step_engine, TwoStep};
use greta_core::EngineConfig;
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{ClusterConfig, ClusterGen};

fn setup(n: usize, groups: u32) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = ClusterGen::new(
        ClusterConfig {
            events: n,
            mappers: groups,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let query = CompiledQuery::parse(
        &format!(
            "RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E) \
             WHERE [job, mapper] AND M.load < NEXT(M).load \
             GROUP-BY mapper WITHIN {n} SLIDE {n}"
        ),
        &reg,
    )
    .unwrap();
    (reg, query, events)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_groups");
    group.sample_size(10);
    let n = 600;
    for groups in [1u32, 5, 10] {
        let (reg, query, events) = setup(n, groups);
        group.bench_with_input(BenchmarkId::new("GRETA", groups), &groups, |b, _| {
            b.iter(|| run_greta(&query, &reg, &events, EngineConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("GRETA-par4", groups), &groups, |b, _| {
            b.iter(|| run_greta_parallel(&query, &reg, &events, EngineConfig::default(), 4))
        });
        for which in [TwoStep::Sase, TwoStep::Cet, TwoStep::Flink] {
            group.bench_with_input(BenchmarkId::new(which.name(), groups), &groups, |b, _| {
                b.iter(|| run_two_step_engine(which, &query, &reg, &events, 5_000_000))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
