//! Cost of multi-query fan-out on one shared ingest plane (ISSUE 9
//! acceptance bench).
//!
//! The multi-query executor pays ingest — reorder buffer, routing,
//! framing — once per event no matter how many queries consume it.
//! This group measures the Q1-shaped grouped stream three ways: the
//! primary query alone, four queries sharing one executor (primary +
//! three registered at runtime), and the same four queries as four
//! standalone executors each fed the full stream (what fan-out costs
//! without the shared plane). All four queries GROUP-BY the same key, so
//! the shared run classifies, hashes, and frames each event once for
//! the whole set. Correctness is asserted outside the timed loop: every
//! query's shared-run output must equal its standalone run byte for
//! byte.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_core::{EmissionMode, ExecutorConfig, QueryId, StreamExecutor, WindowResult};
use greta_query::CompiledQuery;
use greta_types::{Event, EventBuilder, SchemaRegistry, Time};

const EVENTS: usize = 2000;
const SHARDS: usize = 4;

/// Primary plus three runtime-registered queries, all over the same
/// GROUP-BY key so they share one route group.
const QUERIES: [&str; 4] = [
    "RETURN grp, COUNT(*) PATTERN M S+ WHERE S.load < NEXT(S).load \
     GROUP-BY grp WITHIN 500 SLIDE 125",
    "RETURN grp, SUM(S.load) PATTERN M S+ WHERE S.load < NEXT(S).load \
     GROUP-BY grp WITHIN 500 SLIDE 125",
    "RETURN grp, COUNT(*) PATTERN M S+ WHERE S.load > NEXT(S).load \
     GROUP-BY grp WITHIN 500 SLIDE 125",
    "RETURN grp, COUNT(*) PATTERN M S+ WHERE S.load < NEXT(S).load \
     GROUP-BY grp WITHIN 250 SLIDE 125",
];

fn setup() -> (SchemaRegistry, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("M", &["grp", "load"]).expect("schema");
    let events: Vec<Event> = (0..EVENTS as u64)
        .map(|t| {
            EventBuilder::new(&reg, "M")
                .expect("type")
                .at(Time(t))
                .set("grp", (t % 24) as i64)
                .expect("grp")
                .set("load", ((t * 31) % 97) as f64)
                .expect("load")
                .build()
        })
        .collect();
    (reg, events)
}

fn config() -> ExecutorConfig {
    ExecutorConfig {
        shards: SHARDS,
        ..Default::default()
    }
}

/// One executor hosting the first `n` queries; returns each query's rows.
fn drive_shared(reg: &SchemaRegistry, events: &[Event], n: usize) -> Vec<Vec<WindowResult<f64>>> {
    let primary = CompiledQuery::parse(QUERIES[0], reg).expect("query compiles");
    let mut exec = StreamExecutor::<f64>::new(primary, reg.clone(), config()).expect("executor");
    let mut ids = vec![QueryId::PRIMARY];
    for q in &QUERIES[1..n] {
        ids.push(
            exec.register_query(q, EmissionMode::Unordered)
                .expect("register"),
        );
    }
    let mut rows: Vec<Vec<WindowResult<f64>>> = vec![Vec::new(); n];
    for e in events {
        exec.push(e.clone()).expect("in-order");
        for (out, id) in rows.iter_mut().zip(&ids) {
            out.extend(exec.poll_results_of(*id).expect("poll"));
        }
    }
    rows[0].extend(exec.finish().expect("finish"));
    for (out, id) in rows.iter_mut().zip(&ids).skip(1) {
        out.extend(exec.poll_results_of(*id).expect("poll remainder"));
    }
    rows
}

/// The same `n` queries as `n` standalone executors, each fed the full
/// stream — ingest paid `n` times.
fn drive_standalone(
    reg: &SchemaRegistry,
    events: &[Event],
    n: usize,
) -> Vec<Vec<WindowResult<f64>>> {
    QUERIES[..n]
        .iter()
        .map(|q| {
            let query = CompiledQuery::parse(q, reg).expect("query compiles");
            let mut exec =
                StreamExecutor::<f64>::new(query, reg.clone(), config()).expect("executor");
            let mut rows = Vec::new();
            for e in events {
                exec.push(e.clone()).expect("in-order");
                rows.extend(exec.poll_results());
            }
            rows.extend(exec.finish().expect("finish"));
            rows
        })
        .collect()
}

fn bench_multi_query(c: &mut Criterion) {
    let (reg, events) = setup();

    // Acceptance outside the timed loop: each query's shared-plane output
    // is byte-identical to its standalone run.
    {
        let shared = drive_shared(&reg, &events, 4);
        let standalone = drive_standalone(&reg, &events, 4);
        for (i, (mut s, mut a)) in shared.into_iter().zip(standalone).enumerate() {
            greta_core::sort_canonical(&mut s);
            greta_core::sort_canonical(&mut a);
            assert!(!s.is_empty(), "query {i} emitted nothing");
            assert_eq!(s, a, "query {i}: shared run != standalone run");
        }
    }

    let mut g = c.benchmark_group("multi_query");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("queries", "1"), &1usize, |b, &n| {
        b.iter(|| drive_shared(&reg, &events, n))
    });
    g.bench_with_input(BenchmarkId::new("queries", "4-shared"), &4usize, |b, &n| {
        b.iter(|| drive_shared(&reg, &events, n))
    });
    g.bench_with_input(
        BenchmarkId::new("queries", "4-standalone"),
        &4usize,
        |b, &n| b.iter(|| drive_standalone(&reg, &events, n)),
    );
    g.finish();
}

criterion_group!(benches, bench_multi_query);
criterion_main!(benches);
