//! Scaling baseline for the push-based executor: events/second as a
//! function of shard count on the stock workload (query Q1, grouped by
//! sector). Future PRs compare against these numbers before touching the
//! routing or channel layers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_core::{ExecutorConfig, GretaEngine, StreamExecutor};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{StockConfig, StockGen};

const EVENTS: usize = 2000;

fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: EVENTS,
            companies: 20,
            sectors: 8,
            ..Default::default()
        },
        &mut reg,
    )
    .expect("schema");
    let events = gen.generate();
    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 500 SLIDE 125",
        &reg,
    )
    .expect("Q1 compiles");
    (reg, query, events)
}

fn bench_executor_shards(c: &mut Criterion) {
    let (reg, query, events) = setup();
    let mut g = c.benchmark_group("executor_throughput");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("push_poll_finish", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut exec = StreamExecutor::<f64>::new(
                        query.clone(),
                        reg.clone(),
                        ExecutorConfig {
                            shards,
                            ..Default::default()
                        },
                    )
                    .expect("executor");
                    let mut n = 0usize;
                    for e in &events {
                        exec.push(e.clone()).expect("in-order");
                        n += exec.poll_results().len();
                    }
                    n + exec.finish().expect("finish").len()
                })
            },
        );
    }
    // Inline single-shard engine as the zero-thread baseline.
    g.bench_function("inline_engine_baseline", |b| {
        b.iter(|| {
            let mut engine = GretaEngine::<f64>::new(query.clone(), reg.clone()).expect("engine");
            engine.run(&events).expect("run").len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_executor_shards);
criterion_main!(benches);
