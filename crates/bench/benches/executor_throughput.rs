//! Scaling baseline for the push-based executor: events/second as a
//! function of shard count and batch size on the stock workload (query Q1,
//! grouped by sector). Future PRs compare against these numbers before
//! touching the routing or channel layers.
//!
//! The `frame_batching` group isolates the per-event channel overhead that
//! used to dominate small-batch runs (ROADMAP "Executor perf"): batch size
//! 1 reproduces the old one-message-per-event behaviour, larger sizes
//! amortize the Mutex/Condvar handshake over whole `Vec<Event>` frames.
//! The `durability_overhead` group measures the WAL + checkpoint tax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_core::{ExecutorConfig, GretaEngine, StreamExecutor};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{StockConfig, StockGen};

const EVENTS: usize = 2000;

fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: EVENTS,
            companies: 20,
            sectors: 8,
            ..Default::default()
        },
        &mut reg,
    )
    .expect("schema");
    let events = gen.generate();
    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 500 SLIDE 125",
        &reg,
    )
    .expect("Q1 compiles");
    (reg, query, events)
}

fn bench_executor_shards(c: &mut Criterion) {
    let (reg, query, events) = setup();
    let mut g = c.benchmark_group("executor_throughput");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("push_poll_finish", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut exec = StreamExecutor::<f64>::new(
                        query.clone(),
                        reg.clone(),
                        ExecutorConfig {
                            shards,
                            ..Default::default()
                        },
                    )
                    .expect("executor");
                    let mut n = 0usize;
                    for e in &events {
                        exec.push(e.clone()).expect("in-order");
                        n += exec.poll_results().len();
                    }
                    n + exec.finish().expect("finish").len()
                })
            },
        );
    }
    // Inline single-shard engine as the zero-thread baseline.
    g.bench_function("inline_engine_baseline", |b| {
        b.iter(|| {
            let mut engine = GretaEngine::<f64>::new(query.clone(), reg.clone()).expect("engine");
            engine.run(&events).expect("run").len()
        })
    });
    g.finish();
}

fn bench_frame_batching(c: &mut Criterion) {
    let (reg, query, events) = setup();
    let mut g = c.benchmark_group("frame_batching");
    g.sample_size(10);
    for batch_size in [1usize, 16, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("batch", batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter(|| {
                    let mut exec = StreamExecutor::<f64>::new(
                        query.clone(),
                        reg.clone(),
                        ExecutorConfig {
                            shards: 4,
                            batch_size,
                            ..Default::default()
                        },
                    )
                    .expect("executor");
                    let mut n = 0usize;
                    for e in &events {
                        exec.push(e.clone()).expect("in-order");
                        n += exec.poll_results().len();
                    }
                    n + exec.finish().expect("finish").len()
                })
            },
        );
    }
    g.finish();
}

fn bench_durability_overhead(c: &mut Criterion) {
    let (reg, query, events) = setup();
    let mut g = c.benchmark_group("durability_overhead");
    g.sample_size(10);
    for durable in [false, true] {
        let name = if durable { "wal_on" } else { "wal_off" };
        g.bench_function(name, |b| {
            b.iter(|| {
                let dir = durable.then(|| {
                    let d = std::env::temp_dir().join(format!(
                        "greta-bench-dur-{}-{:x}",
                        std::process::id(),
                        std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_nanos())
                            .unwrap_or(0)
                    ));
                    let _ = std::fs::remove_dir_all(&d);
                    d
                });
                let mut exec = StreamExecutor::<f64>::new(
                    query.clone(),
                    reg.clone(),
                    ExecutorConfig {
                        shards: 4,
                        durability: dir.as_ref().map(greta_durability::DurabilityConfig::new),
                        ..Default::default()
                    },
                )
                .expect("executor");
                let mut n = 0usize;
                for e in &events {
                    exec.push(e.clone()).expect("in-order");
                    n += exec.poll_results().len();
                }
                n += exec.finish().expect("finish").len();
                if let Some(d) = dir {
                    let _ = std::fs::remove_dir_all(&d);
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_executor_shards,
    bench_frame_batching,
    bench_durability_overhead
);
criterion_main!(benches);
