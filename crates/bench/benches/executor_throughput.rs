//! Scaling baseline for the push-based executor: events/second as a
//! function of shard count and batch size on the stock workload (query Q1,
//! grouped by sector). Future PRs compare against these numbers before
//! touching the routing or channel layers.
//!
//! The `frame_batching` group isolates the per-event channel overhead that
//! used to dominate small-batch runs (ROADMAP "Executor perf"): batch size
//! 1 reproduces the old one-message-per-event behaviour, larger sizes
//! amortize the Mutex/Condvar handshake over whole `Vec<Event>` frames.
//! The `durability_overhead` group measures the WAL + checkpoint tax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_core::{ExecutorConfig, GretaEngine, StreamExecutor};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry, Time, Value};
use greta_workloads::{StockConfig, StockGen};

const EVENTS: usize = 2000;

fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: EVENTS,
            companies: 20,
            sectors: 8,
            ..Default::default()
        },
        &mut reg,
    )
    .expect("schema");
    let events = gen.generate();
    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 500 SLIDE 125",
        &reg,
    )
    .expect("Q1 compiles");
    (reg, query, events)
}

fn bench_executor_shards(c: &mut Criterion) {
    let (reg, query, events) = setup();
    let mut g = c.benchmark_group("executor_throughput");
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("push_poll_finish", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut exec = StreamExecutor::<f64>::new(
                        query.clone(),
                        reg.clone(),
                        ExecutorConfig {
                            shards,
                            ..Default::default()
                        },
                    )
                    .expect("executor");
                    let mut n = 0usize;
                    for e in &events {
                        exec.push(e.clone()).expect("in-order");
                        n += exec.poll_results().len();
                    }
                    n + exec.finish().expect("finish").len()
                })
            },
        );
    }
    // Inline single-shard engine as the zero-thread baseline.
    g.bench_function("inline_engine_baseline", |b| {
        b.iter(|| {
            let mut engine = GretaEngine::<f64>::new(query.clone(), reg.clone()).expect("engine");
            engine.run(&events).expect("run").len()
        })
    });
    g.finish();
}

fn bench_frame_batching(c: &mut Criterion) {
    let (reg, query, events) = setup();
    let mut g = c.benchmark_group("frame_batching");
    g.sample_size(10);
    for batch_size in [1usize, 16, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("batch", batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter(|| {
                    let mut exec = StreamExecutor::<f64>::new(
                        query.clone(),
                        reg.clone(),
                        ExecutorConfig {
                            shards: 4,
                            batch_size,
                            ..Default::default()
                        },
                    )
                    .expect("executor");
                    let mut n = 0usize;
                    for e in &events {
                        exec.push(e.clone()).expect("in-order");
                        n += exec.poll_results().len();
                    }
                    n + exec.finish().expect("finish").len()
                })
            },
        );
    }
    g.finish();
}

/// Broadcast-heavy routing: a Q3-style leading negation where `Accident`
/// events lack the full partition key and must reach every shard. Each
/// accident used to be deep-cloned once per shard; with `Arc<Event>`
/// routing a broadcast is a pointer clone, so this group isolates the
/// event-plane copy cost that `executor_throughput` (no broadcast types)
/// cannot see.
fn bench_broadcast_heavy(c: &mut Criterion) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("Accident", &["segment"]).expect("schema");
    reg.register_type("Position", &["vehicle", "segment", "speed"])
        .expect("schema");
    let query = CompiledQuery::parse(
        "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
         WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 200 SLIDE 50",
        &reg,
    )
    .expect("Q3 compiles");
    let acc_id = reg.type_id("Accident").expect("Accident");
    let pos_id = reg.type_id("Position").expect("Position");
    // ~30% broadcast events, 16 segments × 8 vehicles.
    let events: Vec<Event> = (0..EVENTS as u64)
        .map(|t| {
            if t % 10 < 3 {
                Event::new_unchecked(acc_id, Time(t), vec![Value::Int((t % 16) as i64)])
            } else {
                Event::new_unchecked(
                    pos_id,
                    Time(t),
                    vec![
                        Value::Int((t % 8) as i64),
                        Value::Int((t % 16) as i64),
                        Value::Float(((t * 31) % 90) as f64),
                    ],
                )
            }
        })
        .collect();
    let mut g = c.benchmark_group("broadcast_heavy");
    g.sample_size(10);
    for shards in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| {
                let mut exec = StreamExecutor::<f64>::new(
                    query.clone(),
                    reg.clone(),
                    ExecutorConfig {
                        shards,
                        ..Default::default()
                    },
                )
                .expect("executor");
                let mut n = 0usize;
                for e in &events {
                    exec.push(e.clone()).expect("in-order");
                    n += exec.poll_results().len();
                }
                n + exec.finish().expect("finish").len()
            })
        });
    }
    g.finish();
}

fn bench_durability_overhead(c: &mut Criterion) {
    let (reg, query, events) = setup();
    let mut g = c.benchmark_group("durability_overhead");
    g.sample_size(10);
    for durable in [false, true] {
        let name = if durable { "wal_on" } else { "wal_off" };
        g.bench_function(name, |b| {
            b.iter(|| {
                let dir = durable.then(|| {
                    let d = std::env::temp_dir().join(format!(
                        "greta-bench-dur-{}-{:x}",
                        std::process::id(),
                        std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_nanos())
                            .unwrap_or(0)
                    ));
                    let _ = std::fs::remove_dir_all(&d);
                    d
                });
                let mut exec = StreamExecutor::<f64>::new(
                    query.clone(),
                    reg.clone(),
                    ExecutorConfig {
                        shards: 4,
                        durability: dir.as_ref().map(greta_durability::DurabilityConfig::new),
                        ..Default::default()
                    },
                )
                .expect("executor");
                let mut n = 0usize;
                for e in &events {
                    exec.push(e.clone()).expect("in-order");
                    n += exec.poll_results().len();
                }
                n += exec.finish().expect("finish").len();
                if let Some(d) = dir {
                    let _ = std::fs::remove_dir_all(&d);
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_executor_shards,
    bench_frame_batching,
    bench_broadcast_heavy,
    bench_durability_overhead
);
criterion_main!(benches);
