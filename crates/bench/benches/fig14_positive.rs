//! Criterion bench for **Fig. 14**: positive patterns (query Q1) over the
//! stock stream, GRETA vs the two-step baselines, varying events/window.
//!
//! Sizes are small (criterion repeats each run many times and the baselines
//! are exponential); the `harness` binary performs the paper-scale sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_bench::{run_greta, run_two_step_engine, TwoStep};
use greta_core::EngineConfig;
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{StockConfig, StockGen};

fn setup(n: usize) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: n,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let query = CompiledQuery::parse(
        &format!(
            "RETURN sector, COUNT(*) PATTERN Stock S+ \
             WHERE [company, sector] AND S.price > NEXT(S).price \
             GROUP-BY sector WITHIN {n} SLIDE {n}"
        ),
        &reg,
    )
    .unwrap();
    (reg, query, events)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_positive");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let (reg, query, events) = setup(n);
        group.bench_with_input(BenchmarkId::new("GRETA", n), &n, |b, _| {
            b.iter(|| run_greta(&query, &reg, &events, EngineConfig::default()))
        });
        for which in [TwoStep::Sase, TwoStep::Cet, TwoStep::Flink] {
            group.bench_with_input(BenchmarkId::new(which.name(), n), &n, |b, _| {
                b.iter(|| run_two_step_engine(which, &query, &reg, &events, 5_000_000))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
