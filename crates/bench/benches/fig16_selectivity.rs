//! Criterion bench for **Fig. 16**: varying the selectivity of the
//! `P.speed > NEXT(P).speed` edge predicate over the Linear Road stream.
//! The two-step engines degrade with selectivity; GRETA stays flat
//! (paper §10.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_bench::{run_greta, run_two_step_engine, TwoStep};
use greta_core::EngineConfig;
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{LinearRoadConfig, LinearRoadGen};

fn setup(n: usize, bias: f64) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = LinearRoadGen::new(
        LinearRoadConfig {
            events: n,
            slowdown_bias: bias,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let query = CompiledQuery::parse(
        &format!(
            "RETURN segment, COUNT(*), AVG(P.speed) PATTERN Position P+ \
             WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
             GROUP-BY segment WITHIN {n} SLIDE {n}"
        ),
        &reg,
    )
    .unwrap();
    (reg, query, events)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_selectivity");
    group.sample_size(10);
    let n = 400;
    for bias in [0.1f64, 0.5, 0.9] {
        let (reg, query, events) = setup(n, bias);
        let label = format!("{bias}");
        group.bench_with_input(BenchmarkId::new("GRETA", &label), &bias, |b, _| {
            b.iter(|| run_greta(&query, &reg, &events, EngineConfig::default()))
        });
        for which in [TwoStep::Sase, TwoStep::Cet, TwoStep::Flink] {
            group.bench_with_input(BenchmarkId::new(which.name(), &label), &bias, |b, _| {
                b.iter(|| run_two_step_engine(which, &query, &reg, &events, 5_000_000))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
