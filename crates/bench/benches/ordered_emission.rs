//! Cost of ordered streaming emission (ISSUE 5 acceptance bench).
//!
//! `EmissionMode::WindowOrdered` adds a cross-shard min-watermark merge in
//! front of the caller: rows park per window until every shard's frontier
//! passes, then release in canonical `(window, group)` order. This group
//! measures that tax against `Unordered` on the Q1-shaped grouped stream
//! at 1 and 4 shards, plus the ordered + rebalancing composition (the
//! frontier must survive barrier migrations). Correctness is asserted
//! outside the timed loop: the ordered poll concatenation must equal the
//! sorted unordered output byte for byte, with no sort at finish.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_core::{EmissionMode, ExecutorConfig, RebalanceConfig, StreamExecutor, WindowResult};
use greta_query::CompiledQuery;
use greta_types::{Event, EventBuilder, SchemaRegistry, Time};

const EVENTS: usize = 2000;

fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("M", &["grp", "load"]).expect("schema");
    let query = CompiledQuery::parse(
        "RETURN grp, COUNT(*), SUM(S.load) PATTERN M S+ WHERE S.load < NEXT(S).load \
         GROUP-BY grp WITHIN 500 SLIDE 125",
        &reg,
    )
    .expect("query compiles");
    let events: Vec<Event> = (0..EVENTS as u64)
        .map(|t| {
            EventBuilder::new(&reg, "M")
                .expect("type")
                .at(Time(t))
                .set("grp", (t % 24) as i64)
                .expect("grp")
                .set("load", ((t * 31) % 97) as f64)
                .expect("load")
                .build()
        })
        .collect();
    (reg, query, events)
}

fn config(shards: usize, emission: EmissionMode, rebalance: bool) -> ExecutorConfig {
    ExecutorConfig {
        shards,
        emission,
        rebalance: rebalance.then_some(RebalanceConfig {
            check_every_windows: 2,
            imbalance_ratio: 1.3,
            min_moves: 1,
        }),
        ..Default::default()
    }
}

fn drive(
    query: &CompiledQuery,
    reg: &SchemaRegistry,
    events: &[Event],
    config: ExecutorConfig,
) -> Vec<WindowResult<f64>> {
    let mut exec =
        StreamExecutor::<f64>::new(query.clone(), reg.clone(), config).expect("executor");
    let mut rows = Vec::new();
    for e in events {
        exec.push(e.clone()).expect("in-order");
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish().expect("finish"));
    rows
}

fn bench_ordered_emission(c: &mut Criterion) {
    let (reg, query, events) = setup();

    // Acceptance outside the timed loop: the ordered stream is the sorted
    // unordered output, byte for byte, and monotone as delivered.
    {
        let mut unordered = drive(
            &query,
            &reg,
            &events,
            config(4, EmissionMode::Unordered, false),
        );
        greta_core::sort_canonical(&mut unordered);
        let ordered = drive(
            &query,
            &reg,
            &events,
            config(4, EmissionMode::WindowOrdered, false),
        );
        assert!(
            ordered
                .windows(2)
                .all(|w| w[0].order_key() <= w[1].order_key()),
            "ordered emission delivered out of order"
        );
        assert_eq!(ordered, unordered, "ordered != sorted unordered");
    }

    let mut g = c.benchmark_group("ordered_emission");
    g.sample_size(10);
    for (label, shards, emission) in [
        ("unordered-1", 1, EmissionMode::Unordered),
        ("ordered-1", 1, EmissionMode::WindowOrdered),
        ("unordered-4", 4, EmissionMode::Unordered),
        ("ordered-4", 4, EmissionMode::WindowOrdered),
    ] {
        g.bench_with_input(BenchmarkId::new("mode", label), &label, |b, _| {
            b.iter(|| drive(&query, &reg, &events, config(shards, emission, false)))
        });
    }
    // The frontier across barrier migrations: ordered + skew detector.
    g.bench_function("mode/ordered-rebalance-4", |b| {
        b.iter(|| {
            drive(
                &query,
                &reg,
                &events,
                config(4, EmissionMode::WindowOrdered, true),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ordered_emission);
criterion_main!(benches);
