//! Loopback cost of the network front-end (ISSUE 7 bench).
//!
//! One iteration submits a fresh Q1 session over a loopback TCP
//! connection, ingests the stock stream in batches through the binary
//! protocol (each ack is a WAL-free group commit carrying the
//! backpressure signal), and drains. Against the in-process
//! `executor_throughput` numbers this isolates the wire tax: framing,
//! codec, one thread hop into the session loop, and the ack round-trip
//! per batch. Groups run at 1 and 4 shards so the gate catches a
//! regression in either the protocol path or its interaction with the
//! sharded runtime. Correctness is asserted outside the timed loop: the
//! rows a loopback subscription delivers must equal the in-process run
//! byte for byte.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greta_core::{EmissionMode, ExecutorConfig, StreamExecutor, WindowResult};
use greta_query::CompiledQuery;
use greta_server::{Client, GretaServer, SessionOptions};
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{StockConfig, StockGen};

const EVENTS: usize = 2000;
const BATCH: usize = 256;

const Q1: &str = "RETURN sector, COUNT(*) PATTERN Stock S+ \
                  WHERE [company, sector] AND S.price > NEXT(S).price \
                  GROUP-BY sector WITHIN 500 SLIDE 250";

fn setup() -> (SchemaRegistry, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: EVENTS,
            ..Default::default()
        },
        &mut reg,
    )
    .expect("stock generator");
    let events = gen.generate();
    (reg, events)
}

fn options(shards: u32) -> SessionOptions {
    SessionOptions {
        shards,
        ..Default::default()
    }
}

/// Submit + ingest + drain one session over an existing loopback address.
fn drive(addr: std::net::SocketAddr, reg: &SchemaRegistry, events: &[Event], shards: u32) {
    let mut client = Client::connect(addr).expect("connect");
    let session = client.submit(Q1, reg, options(shards)).expect("submit");
    for chunk in events.chunks(BATCH) {
        client.ingest(session, chunk.to_vec()).expect("ingest");
    }
    client.drain(session).expect("drain");
}

fn in_process(reg: &SchemaRegistry, events: &[Event], shards: usize) -> Vec<WindowResult<f64>> {
    let query = CompiledQuery::parse(Q1, reg).expect("query compiles");
    let mut exec = StreamExecutor::<f64>::new(
        query,
        reg.clone(),
        ExecutorConfig {
            shards,
            emission: EmissionMode::WindowOrdered,
            ..Default::default()
        },
    )
    .expect("executor");
    let mut rows = Vec::new();
    for e in events {
        exec.push(e.clone()).expect("in-order");
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish().expect("finish"));
    rows
}

fn bench_server_ingest(c: &mut Criterion) {
    let (reg, events) = setup();
    let server = GretaServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Acceptance outside the timed loop: a loopback subscription streams
    // the same rows the in-process executor produces, byte for byte.
    {
        let mut client = Client::connect(addr).expect("connect");
        let session = client.submit(Q1, &reg, options(4)).expect("submit");
        let sub = Client::connect(addr)
            .expect("connect")
            .subscribe(session)
            .expect("subscribe");
        for chunk in events.chunks(BATCH) {
            client.ingest(session, chunk.to_vec()).expect("ingest");
        }
        client.drain(session).expect("drain");
        let wire = sub.collect_rows().expect("rows");
        assert!(!wire.is_empty(), "no rows over the wire");
        assert_eq!(wire, in_process(&reg, &events, 4), "wire != in-process");
    }

    let mut g = c.benchmark_group("server_ingest");
    g.sample_size(10);
    for shards in [1u32, 4] {
        g.bench_with_input(
            BenchmarkId::new("loopback", shards),
            &shards,
            |b, &shards| b.iter(|| drive(addr, &reg, &events, shards)),
        );
    }
    g.finish();
    server.shutdown().expect("shutdown");
}

criterion_group!(benches, bench_server_ingest);
criterion_main!(benches);
