//! Pattern split for nested negation (paper §5.1, Algorithm 3).
//!
//! A pattern with negative sub-patterns is split into a **positive** parent
//! pattern and a set of **negative** sub-patterns, each carrying its
//! *previous* and *following* connection into the parent template:
//!
//! * Case 1 `SEQ(Pi, NOT N, Pj)` — previous = `end(Pi)`, following = `start(Pj)`
//! * Case 2 `SEQ(Pi, NOT N)`     — previous = `end(Pi)`, no following
//! * Case 3 `SEQ(NOT N, Pj)`     — no previous, following = `start(Pj)`
//!
//! Negative sub-patterns may themselves contain negation (Example 2:
//! `(SEQ(A+, NOT SEQ(C, NOT E, D), B))+` splits into positive
//! `(SEQ(A+, B))+`, negative `SEQ(C, D)` hanging off it, and negative `E`
//! hanging off `SEQ(C, D)`), so the result is a tree of split patterns.
//!
//! Deviation from the paper noted in DESIGN.md: consecutive negatives
//! `SEQ(P, NOT N1, NOT N2, Q)` are treated as two *independent* constraints
//! at the same gap rather than merged into `NOT SEQ(N1, N2)`.

use crate::error::QueryError;
use crate::template::{LPattern, StateId};

/// Result of splitting: positive part plus negative children.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPattern {
    /// The pattern with all `NOT` sub-patterns removed.
    pub positive: LPattern,
    /// Negative sub-patterns (each recursively split).
    pub negatives: Vec<NegativeSub>,
}

/// One negative sub-pattern with its connections to the parent.
#[derive(Debug, Clone, PartialEq)]
pub struct NegativeSub {
    /// The negative sub-pattern, recursively split (it may contain
    /// further negation).
    pub split: Box<SplitPattern>,
    /// `end(Pi)` — state in the **parent's positive** pattern whose events
    /// get invalidated (None for Case 3).
    pub previous: Option<StateId>,
    /// `start(Pj)` — state in the parent's positive pattern whose future
    /// events the invalidated events may no longer connect to (None for
    /// Case 2).
    pub following: Option<StateId>,
}

/// Split a located pattern (Algorithm 3). The input must be well-formed
/// (run [`crate::pattern::validate`] first); the outermost pattern must be
/// positive after removal of nested negation.
pub fn split_pattern(p: &LPattern) -> Result<SplitPattern, QueryError> {
    let mut negatives = Vec::new();
    let positive = strip(p, None, None, &mut negatives)?;
    let positive = positive.ok_or_else(|| {
        QueryError::InvalidPattern("negation may not be the outermost operator".into())
    })?;
    Ok(SplitPattern {
        positive,
        negatives,
    })
}

/// Remove `Not` nodes from `p`, recording them with their previous/following
/// connections. `prev_ctx`/`next_ctx` are the connections inherited from the
/// enclosing sequence (used when a negation sits at the boundary of a nested
/// sub-pattern).
fn strip(
    p: &LPattern,
    prev_ctx: Option<StateId>,
    next_ctx: Option<StateId>,
    negatives: &mut Vec<NegativeSub>,
) -> Result<Option<LPattern>, QueryError> {
    match p {
        LPattern::Type { .. } => Ok(Some(p.clone())),
        LPattern::Plus(q) => {
            let inner = strip(q, prev_ctx, next_ctx, negatives)?;
            Ok(inner.map(|q| LPattern::Plus(Box::new(q))))
        }
        LPattern::Seq(parts) => {
            // Previous connection for element i: end of the nearest positive
            // element before i (or the inherited context at the boundary).
            // Following: start of the nearest positive element after i.
            let positive_parts: Vec<Option<&LPattern>> = parts
                .iter()
                .map(|e| match e {
                    LPattern::Not(_) => None,
                    other => Some(other),
                })
                .collect();
            let mut out = Vec::new();
            for (i, part) in parts.iter().enumerate() {
                let prev = positive_parts[..i]
                    .iter()
                    .rev()
                    .flatten()
                    .next()
                    .map(|e| e.end())
                    .or(prev_ctx);
                let next = positive_parts[i + 1..]
                    .iter()
                    .flatten()
                    .next()
                    .map(|e| e.start())
                    .or(next_ctx);
                match part {
                    LPattern::Not(inner) => {
                        let split = split_pattern(inner)?;
                        negatives.push(NegativeSub {
                            split: Box::new(split),
                            previous: prev,
                            following: next,
                        });
                    }
                    other => {
                        if let Some(stripped) = strip(other, prev, next, negatives)? {
                            out.push(stripped);
                        }
                    }
                }
            }
            match out.len() {
                0 => Ok(None),
                1 => Ok(Some(out.pop().unwrap())),
                _ => Ok(Some(LPattern::Seq(out))),
            }
        }
        LPattern::Not(inner) => {
            // Bare negation (not inside a sequence) — only reachable when
            // the whole pattern is negative; record with inherited context.
            let split = split_pattern(inner)?;
            negatives.push(NegativeSub {
                split: Box::new(split),
                previous: prev_ctx,
                following: next_ctx,
            });
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use crate::pattern::simplify;
    use crate::template::Template;

    fn located(s: &str) -> LPattern {
        LPattern::locate(&simplify(parse_pattern(s).unwrap())).unwrap()
    }

    /// Binding name of a state id, looked up in the *original* located
    /// pattern (ids are global).
    fn binding_of(p: &LPattern, id: StateId) -> String {
        fn walk(p: &LPattern, id: StateId, out: &mut Option<String>) {
            match p {
                LPattern::Type { occ, binding, .. } if *occ == id => {
                    *out = Some(binding.clone());
                }
                LPattern::Type { .. } => {}
                LPattern::Plus(q) | LPattern::Not(q) => walk(q, id, out),
                LPattern::Seq(ps) => ps.iter().for_each(|q| walk(q, id, out)),
            }
        }
        let mut out = None;
        walk(p, id, &mut out);
        out.unwrap()
    }

    #[test]
    fn example_2_nested_negation() {
        // (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ →
        //   positive (SEQ(A+, B))+
        //   negative SEQ(C, D)  [prev = A, following = B]
        //     negative E        [prev = C, following = D]
        let lp = located("(SEQ(A+, NOT SEQ(C, NOT E, D), B))+");
        let split = split_pattern(&lp).unwrap();
        assert_eq!(split.positive.to_string(), "(SEQ((A)+, B))+");
        assert_eq!(split.negatives.len(), 1);

        let n1 = &split.negatives[0];
        assert_eq!(n1.split.positive.to_string(), "SEQ(C, D)");
        assert_eq!(binding_of(&lp, n1.previous.unwrap()), "A");
        assert_eq!(binding_of(&lp, n1.following.unwrap()), "B");

        assert_eq!(n1.split.negatives.len(), 1);
        let n2 = &n1.split.negatives[0];
        assert_eq!(n2.split.positive.to_string(), "E");
        assert!(n2.split.negatives.is_empty());
        assert_eq!(binding_of(&lp, n2.previous.unwrap()), "C");
        assert_eq!(binding_of(&lp, n2.following.unwrap()), "D");
    }

    #[test]
    fn case_2_trailing_negation() {
        // SEQ(A+, NOT E): previous = A, no following (Fig. 7(b)).
        let lp = located("SEQ(A+, NOT E)");
        let split = split_pattern(&lp).unwrap();
        assert_eq!(split.positive.to_string(), "(A)+");
        let n = &split.negatives[0];
        assert_eq!(binding_of(&lp, n.previous.unwrap()), "A");
        assert_eq!(n.following, None);
    }

    #[test]
    fn case_3_leading_negation() {
        // SEQ(NOT E, A+): no previous, following = A (Fig. 7(c)); query Q3.
        let lp = located("SEQ(NOT E, A+)");
        let split = split_pattern(&lp).unwrap();
        assert_eq!(split.positive.to_string(), "(A)+");
        let n = &split.negatives[0];
        assert_eq!(n.previous, None);
        assert_eq!(binding_of(&lp, n.following.unwrap()), "A");
    }

    #[test]
    fn positive_pattern_splits_to_itself() {
        let lp = located("(SEQ(A+, B))+");
        let split = split_pattern(&lp).unwrap();
        assert_eq!(split.positive, lp);
        assert!(split.negatives.is_empty());
    }

    #[test]
    fn consecutive_negatives_are_independent_constraints() {
        let lp = located("SEQ(A, NOT X, NOT Y, B)");
        let split = split_pattern(&lp).unwrap();
        assert_eq!(split.positive.to_string(), "SEQ(A, B)");
        assert_eq!(split.negatives.len(), 2);
        for n in &split.negatives {
            assert_eq!(binding_of(&lp, n.previous.unwrap()), "A");
            assert_eq!(binding_of(&lp, n.following.unwrap()), "B");
        }
    }

    #[test]
    fn negation_inside_nested_seq_inherits_outer_context() {
        // SEQ(SEQ(A, NOT X), B): X's following is B from the outer sequence.
        let lp = located("SEQ(SEQ(A, NOT X), B)");
        // simplify flattens nested SEQ, so force the nesting manually:
        let lp2 = match &lp {
            LPattern::Seq(_) => lp.clone(),
            _ => unreachable!(),
        };
        let split = split_pattern(&lp2).unwrap();
        let n = &split.negatives[0];
        assert_eq!(binding_of(&lp, n.previous.unwrap()), "A");
        assert_eq!(binding_of(&lp, n.following.unwrap()), "B");
    }

    #[test]
    fn negation_under_kleene() {
        // (SEQ(A+, NOT C, B))+ — prev/following resolved inside the loop body.
        let lp = located("(SEQ(A+, NOT C, B))+");
        let split = split_pattern(&lp).unwrap();
        assert_eq!(split.positive.to_string(), "(SEQ((A)+, B))+");
        let n = &split.negatives[0];
        assert_eq!(binding_of(&lp, n.previous.unwrap()), "A");
        assert_eq!(binding_of(&lp, n.following.unwrap()), "B");
    }

    #[test]
    fn split_positive_builds_valid_template() {
        // The positive part of a split must be template-constructible and
        // the connection states must exist in the parent template.
        let lp = located("(SEQ(A+, NOT SEQ(C, NOT E, D), B))+");
        let split = split_pattern(&lp).unwrap();
        let t = Template::build(&split.positive).unwrap();
        let n1 = &split.negatives[0];
        assert!(t.state(n1.previous.unwrap()).is_some());
        assert!(t.state(n1.following.unwrap()).is_some());
    }

    #[test]
    fn fully_negative_rejected() {
        let lp = located("SEQ(NOT A, NOT B)");
        assert!(split_pattern(&lp).is_err());
    }
}
