//! Hand-written lexer for the query language of paper Fig. 2.

use crate::error::QueryError;

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased; see [`KEYWORDS`]).
    Keyword(&'static str),
    /// Identifier (type names, aliases, attributes, time units).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

/// Reserved words, matched case-insensitively.
pub const KEYWORDS: &[&str] = &[
    "RETURN", "PATTERN", "WHERE", "GROUP-BY", "WITHIN", "SLIDE", "SEQ", "NOT", "AND", "OR", "NEXT",
    "COUNT", "MIN", "MAX", "SUM", "AVG", "TRUE", "FALSE",
];

const SYMBOLS: &[&str] = &[
    "<=", ">=", "!=", "(", ")", "[", "]", ",", ".", "+", "-", "*", "/", "%", "=", "<", ">", "?",
];

/// Tokenize the full input.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Identifiers / keywords (GROUP-BY contains a hyphen, handled below).
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let mut word = input[start..i].to_string();
            // GROUP-BY: ident "GROUP" + '-' + "BY"
            if word.eq_ignore_ascii_case("group")
                && bytes.get(i) == Some(&b'-')
                && input[i + 1..].to_ascii_uppercase().starts_with("BY")
            {
                i += 3;
                word = "GROUP-BY".to_string();
            }
            let upper = word.to_ascii_uppercase();
            if let Some(&kw) = KEYWORDS.iter().find(|&&k| k == upper) {
                toks.push(Token {
                    kind: TokenKind::Keyword(kw),
                    pos: start,
                });
            } else {
                toks.push(Token {
                    kind: TokenKind::Ident(word),
                    pos: start,
                });
            }
            continue;
        }
        // Numbers: integer or float (digits, optional fraction).
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &input[start..i];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| QueryError::Lex {
                    pos: start,
                    msg: format!("bad float literal `{text}`"),
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| QueryError::Lex {
                    pos: start,
                    msg: format!("bad integer literal `{text}`"),
                })?)
            };
            toks.push(Token { kind, pos: start });
            continue;
        }
        // String literal: '...'
        if c == '\'' {
            let start = i;
            i += 1;
            let str_start = i;
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(QueryError::Lex {
                    pos: start,
                    msg: "unterminated string literal".into(),
                });
            }
            toks.push(Token {
                kind: TokenKind::Str(input[str_start..i].to_string()),
                pos: start,
            });
            i += 1;
            continue;
        }
        // Symbols, longest match first.
        let rest = &input[i..];
        match SYMBOLS.iter().find(|&&s| rest.starts_with(s)) {
            Some(&sym) => {
                toks.push(Token {
                    kind: TokenKind::Sym(sym),
                    pos: i,
                });
                i += sym.len();
            }
            None => {
                return Err(QueryError::Lex {
                    pos: i,
                    msg: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        pos: input.len(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("return PATTERN Where"),
            vec![
                TokenKind::Keyword("RETURN"),
                TokenKind::Keyword("PATTERN"),
                TokenKind::Keyword("WHERE"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn group_by_is_one_keyword() {
        assert_eq!(
            kinds("GROUP-BY sector"),
            vec![
                TokenKind::Keyword("GROUP-BY"),
                TokenKind::Ident("sector".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("10 1.05"),
            vec![TokenKind::Int(10), TokenKind::Float(1.05), TokenKind::Eof]
        );
        // `10.minutes` must not lex 10. as a float
        assert_eq!(
            kinds("10.x"),
            vec![
                TokenKind::Int(10),
                TokenKind::Sym("."),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn symbols_longest_match() {
        assert_eq!(
            kinds("< <= >= != ="),
            vec![
                TokenKind::Sym("<"),
                TokenKind::Sym("<="),
                TokenKind::Sym(">="),
                TokenKind::Sym("!="),
                TokenKind::Sym("="),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            kinds("'IBM'"),
            vec![TokenKind::Str("IBM".into()), TokenKind::Eof]
        );
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn full_query_q1_lexes() {
        let q = "RETURN sector, COUNT(*) PATTERN Stock S+ \
                 WHERE [company, sector] AND S.price > NEXT(S).price \
                 GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds";
        let toks = lex(q).unwrap();
        assert!(toks.len() > 20);
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }

    #[test]
    fn error_position() {
        let err = lex("RETURN ~").unwrap_err();
        match err {
            QueryError::Lex { pos, .. } => assert_eq!(pos, 7),
            other => panic!("unexpected {other:?}"),
        }
    }
}
