//! Static GRETA template (paper §4.1, Algorithm 1).
//!
//! A positive pattern is translated into a finite-state-automaton-like
//! *template*: states correspond to event-type **occurrences** in the
//! pattern (unique [`StateId`]s support the multiple-occurrence extension of
//! §9 / Fig. 13), transitions correspond to the operators:
//!
//! * `SEQ(Pi, Pj)`  ⇒ transition `end(Pi) → start(Pj)` labeled `SEQ`
//! * `Pi+`          ⇒ transition `end(Pi) → start(Pi)` labeled `+`
//!
//! Events of the start (end) state's type are START (END) events; states may
//! be both. `predecessors(s)` lists the states whose events may immediately
//! precede an event of state `s` in a trend — the runtime connects events
//! along exactly these state pairs.

use crate::ast::Pattern;
use crate::error::QueryError;
use std::fmt;

/// Dense id of a template state (one per event-type occurrence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StateId(pub u16);

/// Transition label (paper Algorithm 1: `SEQ` or `+`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransKind {
    /// Adjacency across an event sequence operator.
    Seq,
    /// Loop-back adjacency of a Kleene plus.
    Plus,
}

/// A *located* pattern: the AST restricted to `Type`/`Plus`/`Seq`/`Not`
/// (after desugaring) with a unique [`StateId`] stamped on every type leaf.
/// Ids are global across the whole pattern, including leaves inside `NOT`,
/// so that the split algorithm (§5.1) can reference parent states.
#[derive(Debug, Clone, PartialEq)]
pub enum LPattern {
    /// Event type occurrence.
    Type {
        /// Unique occurrence id (becomes the state id).
        occ: StateId,
        /// Schema type name.
        name: String,
        /// Alias binding (defaults to the type name).
        binding: String,
    },
    /// Kleene plus.
    Plus(Box<LPattern>),
    /// Event sequence (n-ary).
    Seq(Vec<LPattern>),
    /// Negative sub-pattern.
    Not(Box<LPattern>),
}

impl LPattern {
    /// Stamp occurrence ids onto a desugared pattern (leaf order).
    pub fn locate(p: &Pattern) -> Result<LPattern, QueryError> {
        let mut next = 0u16;
        Self::locate_inner(p, &mut next)
    }

    fn locate_inner(p: &Pattern, next: &mut u16) -> Result<LPattern, QueryError> {
        match p {
            Pattern::Type { name, alias } => {
                let occ = StateId(*next);
                *next += 1;
                Ok(LPattern::Type {
                    occ,
                    name: name.clone(),
                    binding: alias.clone().unwrap_or_else(|| name.clone()),
                })
            }
            Pattern::Plus(q) => Ok(LPattern::Plus(Box::new(Self::locate_inner(q, next)?))),
            Pattern::Seq(ps) => Ok(LPattern::Seq(
                ps.iter()
                    .map(|q| Self::locate_inner(q, next))
                    .collect::<Result<_, _>>()?,
            )),
            Pattern::Not(q) => Ok(LPattern::Not(Box::new(Self::locate_inner(q, next)?))),
            other => Err(QueryError::InvalidPattern(format!(
                "pattern must be desugared before template construction, found `{other}`"
            ))),
        }
    }

    /// `start(P)` of Algorithm 1 (lines 10–14): the occurrence that begins
    /// every trend of this (positive part of the) pattern.
    pub fn start(&self) -> StateId {
        match self {
            LPattern::Type { occ, .. } => *occ,
            LPattern::Plus(p) => p.start(),
            LPattern::Seq(ps) => ps
                .iter()
                .find(|p| !matches!(p, LPattern::Not(_)))
                .expect("validated: sequence has a positive element")
                .start(),
            LPattern::Not(p) => p.start(),
        }
    }

    /// `end(P)` of Algorithm 1 (lines 15–19).
    pub fn end(&self) -> StateId {
        match self {
            LPattern::Type { occ, .. } => *occ,
            LPattern::Plus(p) => p.end(),
            LPattern::Seq(ps) => ps
                .iter()
                .rev()
                .find(|p| !matches!(p, LPattern::Not(_)))
                .expect("validated: sequence has a positive element")
                .end(),
            LPattern::Not(p) => p.end(),
        }
    }

    /// True if this located pattern contains no `Not`.
    pub fn is_positive(&self) -> bool {
        match self {
            LPattern::Type { .. } => true,
            LPattern::Plus(p) => p.is_positive(),
            LPattern::Seq(ps) => ps.iter().all(LPattern::is_positive),
            LPattern::Not(_) => false,
        }
    }
}

impl fmt::Display for LPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LPattern::Type { name, binding, .. } => {
                if binding == name {
                    write!(f, "{name}")
                } else {
                    write!(f, "{name} {binding}")
                }
            }
            LPattern::Plus(p) => write!(f, "({p})+"),
            LPattern::Seq(ps) => {
                write!(f, "SEQ(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            LPattern::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

/// A template state: one event-type occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct StateInfo {
    /// Global occurrence id (shared with the located pattern).
    pub occ: StateId,
    /// Event type name (resolved to a `TypeId` at compile time).
    pub type_name: String,
    /// Alias binding used by predicates and aggregates.
    pub binding: String,
}

/// The GRETA template: automaton over event-type occurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// States in occurrence order. NOTE: `StateId`s are *global* over the
    /// whole query pattern; use [`Template::state`] to look up by id.
    pub states: Vec<StateInfo>,
    /// Transitions `(from, to, kind)`.
    pub transitions: Vec<(StateId, StateId, TransKind)>,
    /// The start state (`start(P)`; unique per Theorem 4.1).
    pub start: StateId,
    /// The end state (`end(P)`; unique per Theorem 4.1).
    pub end: StateId,
}

impl Template {
    /// Algorithm 1: build the template for a **positive** located pattern.
    pub fn build(p: &LPattern) -> Result<Template, QueryError> {
        if !p.is_positive() {
            return Err(QueryError::InvalidPattern(
                "template construction requires a positive pattern; split negation first (§5.1)"
                    .into(),
            ));
        }
        let mut states = Vec::new();
        collect_states(p, &mut states);
        let mut transitions = Vec::new();
        collect_transitions(p, &mut transitions);
        Ok(Template {
            states,
            transitions,
            start: p.start(),
            end: p.end(),
        })
    }

    /// Look up state info by id.
    pub fn state(&self, id: StateId) -> Option<&StateInfo> {
        self.states.iter().find(|s| s.occ == id)
    }

    /// States whose events may immediately precede an event of `s` in a
    /// trend (`P.predTypes` of §4.1, at state granularity).
    pub fn predecessors(&self, s: StateId) -> Vec<StateId> {
        let mut v: Vec<StateId> = self
            .transitions
            .iter()
            .filter(|(_, to, _)| *to == s)
            .map(|(from, _, _)| *from)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// States of the given event type name.
    pub fn states_of_type(&self, type_name: &str) -> Vec<StateId> {
        self.states
            .iter()
            .filter(|s| s.type_name == type_name)
            .map(|s| s.occ)
            .collect()
    }

    /// State bound to the given alias/binding.
    pub fn state_of_binding(&self, binding: &str) -> Option<StateId> {
        self.states
            .iter()
            .find(|s| s.binding == binding)
            .map(|s| s.occ)
    }

    /// True when events of state `s` begin trends.
    pub fn is_start(&self, s: StateId) -> bool {
        self.start == s
    }

    /// True when events of state `s` may finish trends.
    pub fn is_end(&self, s: StateId) -> bool {
        self.end == s
    }

    /// Render the template as Graphviz dot (Fig. 5-style diagrams: the
    /// start state gets an incoming arrow, the end state a double circle,
    /// `+` transitions are dashed).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph greta_template {\n  rankdir=LR;\n");
        out.push_str("  __start [shape=point];\n");
        for s in &self.states {
            let shape = if self.is_end(s.occ) {
                "doublecircle"
            } else {
                "circle"
            };
            let label = if s.binding == s.type_name {
                s.type_name.clone()
            } else {
                format!("{} {}", s.type_name, s.binding)
            };
            writeln!(out, "  s{} [shape={shape}, label=\"{label}\"];", s.occ.0).unwrap();
        }
        writeln!(out, "  __start -> s{};", self.start.0).unwrap();
        for (from, to, kind) in &self.transitions {
            let style = match kind {
                TransKind::Seq => "solid",
                TransKind::Plus => "dashed",
            };
            let label = match kind {
                TransKind::Seq => "SEQ",
                TransKind::Plus => "+",
            };
            writeln!(
                out,
                "  s{} -> s{} [style={style}, label=\"{label}\"];",
                from.0, to.0
            )
            .unwrap();
        }
        out.push_str("}\n");
        out
    }
}

fn collect_states(p: &LPattern, out: &mut Vec<StateInfo>) {
    match p {
        LPattern::Type { occ, name, binding } => out.push(StateInfo {
            occ: *occ,
            type_name: name.clone(),
            binding: binding.clone(),
        }),
        LPattern::Plus(q) => collect_states(q, out),
        LPattern::Seq(ps) => ps.iter().for_each(|q| collect_states(q, out)),
        LPattern::Not(_) => unreachable!("positive pattern"),
    }
}

/// Algorithm 1 lines 3–8: one `SEQ` transition per adjacent pair in a
/// sequence, one `+` transition per Kleene plus.
fn collect_transitions(p: &LPattern, out: &mut Vec<(StateId, StateId, TransKind)>) {
    match p {
        LPattern::Type { .. } => {}
        LPattern::Plus(q) => {
            out.push((q.end(), q.start(), TransKind::Plus));
            collect_transitions(q, out);
        }
        LPattern::Seq(ps) => {
            for pair in ps.windows(2) {
                out.push((pair[0].end(), pair[1].start(), TransKind::Seq));
            }
            ps.iter().for_each(|q| collect_transitions(q, out));
        }
        LPattern::Not(_) => unreachable!("positive pattern"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use crate::pattern::{desugar, simplify};

    fn template(s: &str) -> Template {
        let p = simplify(parse_pattern(s).unwrap());
        let alts = desugar(&p).unwrap();
        assert_eq!(alts.len(), 1, "test pattern must be star-free");
        let lp = LPattern::locate(&alts[0]).unwrap();
        Template::build(&lp).unwrap()
    }

    #[test]
    fn running_example_template() {
        // Figure 5: (SEQ(A+, B))+ — start A, end B,
        // predTypes(A) = {A, B}, predTypes(B) = {A}.
        let t = template("(SEQ(A+, B))+");
        assert_eq!(t.states.len(), 2);
        let a = t.state_of_binding("A").unwrap();
        let b = t.state_of_binding("B").unwrap();
        assert_eq!(t.start, a);
        assert_eq!(t.end, b);
        assert_eq!(t.predecessors(a), vec![a, b]);
        assert_eq!(t.predecessors(b), vec![a]);
        // Transitions: A+ loop (A→A), SEQ (A→B), outer plus (B→A).
        assert_eq!(t.transitions.len(), 3);
        assert!(t.transitions.contains(&(a, a, TransKind::Plus)));
        assert!(t.transitions.contains(&(a, b, TransKind::Seq)));
        assert!(t.transitions.contains(&(b, a, TransKind::Plus)));
    }

    #[test]
    fn flat_kleene() {
        // A+: A is both start and end; only the self-loop.
        let t = template("A+");
        let a = t.state_of_binding("A").unwrap();
        assert_eq!(t.start, a);
        assert_eq!(t.end, a);
        assert_eq!(t.transitions, vec![(a, a, TransKind::Plus)]);
        assert!(t.is_start(a) && t.is_end(a));
    }

    #[test]
    fn simple_seq_kleene() {
        // SEQ(A+, B): no B→A edge (Fig. 6(b): "no dashed edges").
        let t = template("SEQ(A+, B)");
        let a = t.state_of_binding("A").unwrap();
        let b = t.state_of_binding("B").unwrap();
        assert_eq!(t.predecessors(a), vec![a]);
        assert_eq!(t.predecessors(b), vec![a]);
        assert_eq!(t.start, a);
        assert_eq!(t.end, b);
    }

    #[test]
    fn q2_template() {
        let t = template("SEQ(Start S, Measurement M+, End E)");
        let s = t.state_of_binding("S").unwrap();
        let m = t.state_of_binding("M").unwrap();
        let e = t.state_of_binding("E").unwrap();
        assert_eq!(t.start, s);
        assert_eq!(t.end, e);
        assert_eq!(t.predecessors(s), vec![]);
        assert_eq!(t.predecessors(m), vec![s, m]);
        assert_eq!(t.predecessors(e), vec![m]);
    }

    #[test]
    fn multiple_occurrences_get_distinct_states() {
        // §9 / Fig. 13: SEQ(A+, B, A, A+, B+) with unique ids.
        let p = simplify(parse_pattern("SEQ(A A1+, B B2, A A3, A A4+, B B5+)").unwrap());
        let lp = LPattern::locate(&p).unwrap();
        let t = Template::build(&lp).unwrap();
        assert_eq!(t.states.len(), 5);
        assert_eq!(t.states_of_type("A").len(), 3);
        assert_eq!(t.states_of_type("B").len(), 2);
        let a1 = t.state_of_binding("A1").unwrap();
        let b5 = t.state_of_binding("B5").unwrap();
        assert_eq!(t.start, a1);
        assert_eq!(t.end, b5);
        // A1's predecessors: only itself (its + loop).
        assert_eq!(t.predecessors(a1), vec![a1]);
    }

    #[test]
    fn start_end_unique_theorem_4_1() {
        // Several shapes; start/end always well-defined and stable.
        for s in ["A+", "SEQ(A, B)", "(SEQ(A+, B))+", "SEQ(A, SEQ(B, C)+, D)"] {
            let t = template(s);
            assert!(t.state(t.start).is_some(), "{s}");
            assert!(t.state(t.end).is_some(), "{s}");
        }
    }

    #[test]
    fn template_rejects_negative() {
        let p = simplify(parse_pattern("SEQ(A, NOT C, B)").unwrap());
        let lp = LPattern::locate(&p).unwrap();
        assert!(Template::build(&lp).is_err());
    }

    #[test]
    fn dot_export_contains_all_states_and_transitions() {
        let t = template("(SEQ(A+, B))+");
        let dot = t.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("doublecircle")); // end state B
        assert!(dot.contains("style=dashed")); // the + transitions
        assert_eq!(dot.matches("->").count(), 1 + t.transitions.len());
    }

    #[test]
    fn locate_rejects_sugar() {
        assert!(LPattern::locate(&parse_pattern("A*").unwrap()).is_err());
        assert!(LPattern::locate(&parse_pattern("A OR B").unwrap()).is_err());
    }
}
