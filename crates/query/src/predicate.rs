//! Compiled predicates (paper §6).
//!
//! The query analyzer classifies `WHERE` conjuncts into:
//!
//! * **vertex predicates** — evaluated on single events before insertion
//!   (local filters; equivalence predicates become partition attributes);
//! * **edge predicates** — evaluated on pairs of adjacent events during
//!   graph construction. When an edge predicate is linear in one attribute
//!   of the *previous* event (`prev.attr · s + c ⟨op⟩ f(next)`), a
//!   [`RangeForm`] is extracted so the runtime can answer predecessor
//!   lookups with a Vertex-Tree range query instead of a scan (Fig. 11).

use crate::ast::{BinOp, CmpOp};
use greta_types::{AttrId, Event, Value};
use std::borrow::Cow;

use crate::template::StateId;

/// Which event an attribute reference reads in a compiled expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventRole {
    /// The earlier of the two adjacent events (edge predicates only).
    Prev,
    /// The event under evaluation (vertex predicates) / the later adjacent
    /// event (edge predicates; `NEXT(E).attr`).
    Cur,
}

/// Expression with attribute references resolved to `(role, AttrId)`.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Literal.
    Const(Value),
    /// Attribute read.
    Attr(EventRole, AttrId),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CompiledExpr>,
        /// Right operand.
        rhs: Box<CompiledExpr>,
    },
}

impl CompiledExpr {
    /// Evaluate to a value. `prev` may be absent for vertex predicates.
    pub fn eval(&self, prev: Option<&Event>, cur: &Event) -> Value {
        self.eval_ref(prev, cur).into_owned()
    }

    /// Allocation-free evaluation core: attribute and constant leaves are
    /// *borrowed* from the event / expression (no `Value::Str` clones on
    /// the hot path); only computed `Bin` results are owned.
    fn eval_ref<'a>(&'a self, prev: Option<&'a Event>, cur: &'a Event) -> Cow<'a, Value> {
        match self {
            CompiledExpr::Const(v) => Cow::Borrowed(v),
            CompiledExpr::Attr(EventRole::Cur, a) => Cow::Borrowed(cur.attr(*a)),
            CompiledExpr::Attr(EventRole::Prev, a) => match prev {
                Some(p) => Cow::Borrowed(p.attr(*a)),
                None => Cow::Owned(Value::Bool(false)),
            },
            CompiledExpr::Bin { op, lhs, rhs } => {
                let l = lhs.eval_ref(prev, cur);
                let r = rhs.eval_ref(prev, cur);
                Cow::Owned(match op {
                    BinOp::Add => Value::Float(l.as_f64() + r.as_f64()),
                    BinOp::Sub => Value::Float(l.as_f64() - r.as_f64()),
                    BinOp::Mul => Value::Float(l.as_f64() * r.as_f64()),
                    BinOp::Div => Value::Float(l.as_f64() / r.as_f64()),
                    BinOp::Mod => Value::Float(l.as_f64() % r.as_f64()),
                    BinOp::And => Value::Bool(truthy(&l) && truthy(&r)),
                    BinOp::Or => Value::Bool(truthy(&l) || truthy(&r)),
                    BinOp::Cmp(c) => Value::Bool(c.eval(l.total_cmp(&r))),
                })
            }
        }
    }

    /// Evaluate as a boolean predicate (no allocation).
    pub fn eval_bool(&self, prev: Option<&Event>, cur: &Event) -> bool {
        truthy(&self.eval_ref(prev, cur))
    }

    /// Evaluate as a number (no allocation).
    pub fn eval_f64(&self, prev: Option<&Event>, cur: &Event) -> f64 {
        self.eval_ref(prev, cur).as_f64()
    }

    /// True when the expression reads the given role.
    pub fn uses_role(&self, role: EventRole) -> bool {
        match self {
            CompiledExpr::Const(_) => false,
            CompiledExpr::Attr(r, _) => *r == role,
            CompiledExpr::Bin { lhs, rhs, .. } => lhs.uses_role(role) || rhs.uses_role(role),
        }
    }
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Str(s) => !s.is_empty(),
    }
}

/// A local filter on events of one template state.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexPredicate {
    /// State whose events are filtered.
    pub state: StateId,
    /// Predicate over the single event (all refs have role `Cur`).
    pub expr: CompiledExpr,
}

/// Linear range form of an edge predicate:
/// `prev.attr · scale + shift ⟨op⟩ eval(bound_expr, next)`.
///
/// The runtime computes `bound = (eval(bound_expr) − shift) / scale` and
/// issues `prev.attr ⟨op'⟩ bound` as a Vertex-Tree range query, where
/// `op'` is `op` flipped when `scale < 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeForm {
    /// Attribute of the previous event indexed by the Vertex Tree.
    pub prev_attr: AttrId,
    /// Comparison operator.
    pub op: CmpOp,
    /// The next-event side (roles restricted to `Cur`).
    pub bound_expr: CompiledExpr,
    /// Multiplicative coefficient on `prev.attr`.
    pub scale: f64,
    /// Additive coefficient.
    pub shift: f64,
}

impl RangeForm {
    /// Resolve the concrete bound and operator for a given next event.
    pub fn bound(&self, next: &Event) -> (CmpOp, f64) {
        let raw = self.bound_expr.eval_f64(None, next);
        let bound = (raw - self.shift) / self.scale;
        let op = if self.scale < 0.0 {
            self.op.flip()
        } else {
            self.op
        };
        (op, bound)
    }
}

/// A compiled edge predicate between two template states.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePredicate {
    /// State of the earlier event.
    pub prev_state: StateId,
    /// State of the later event.
    pub next_state: StateId,
    /// Full predicate (`Prev` reads the earlier event, `Cur` the later).
    pub expr: CompiledExpr,
    /// Range form, if the predicate is linear in one prev attribute.
    pub range: Option<RangeForm>,
}

/// All compiled predicates of one query alternative.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PredicateSet {
    /// Partition attribute names (`GROUP-BY` + equivalence predicates);
    /// per-type resolution happens in `greta-core`.
    pub partition_attrs: Vec<String>,
    /// Local vertex filters.
    pub vertex: Vec<VertexPredicate>,
    /// Edge predicates.
    pub edges: Vec<EdgePredicate>,
}

impl PredicateSet {
    /// Vertex predicates of a state.
    pub fn vertex_preds(&self, s: StateId) -> impl Iterator<Item = &VertexPredicate> {
        self.vertex.iter().filter(move |v| v.state == s)
    }

    /// Edge predicates for a `(prev, next)` state pair.
    pub fn edge_preds(&self, prev: StateId, next: StateId) -> impl Iterator<Item = &EdgePredicate> {
        self.edges
            .iter()
            .filter(move |e| e.prev_state == prev && e.next_state == next)
    }
}

/// Try to express a `Prev`-side expression as `attr · scale + shift`.
/// Returns `None` when the expression is not linear in exactly one
/// attribute of the previous event.
pub fn linearize_prev(e: &CompiledExpr) -> Option<(AttrId, f64, f64)> {
    let lin = lin(e)?;
    lin.attr.map(|a| (a, lin.scale, lin.shift))
}

struct Lin {
    attr: Option<AttrId>,
    scale: f64,
    shift: f64,
}

fn lin(e: &CompiledExpr) -> Option<Lin> {
    match e {
        CompiledExpr::Const(v) => v.as_f64_opt().map(|c| Lin {
            attr: None,
            scale: 0.0,
            shift: c,
        }),
        CompiledExpr::Attr(EventRole::Prev, a) => Some(Lin {
            attr: Some(*a),
            scale: 1.0,
            shift: 0.0,
        }),
        CompiledExpr::Attr(EventRole::Cur, _) => None,
        CompiledExpr::Bin { op, lhs, rhs } => {
            let l = lin(lhs)?;
            let r = lin(rhs)?;
            match op {
                BinOp::Add => combine(l, r, 1.0),
                BinOp::Sub => combine(l, r, -1.0),
                BinOp::Mul => {
                    // one side must be constant
                    if l.attr.is_none() {
                        Some(Lin {
                            attr: r.attr,
                            scale: r.scale * l.shift,
                            shift: r.shift * l.shift,
                        })
                    } else if r.attr.is_none() {
                        Some(Lin {
                            attr: l.attr,
                            scale: l.scale * r.shift,
                            shift: l.shift * r.shift,
                        })
                    } else {
                        None
                    }
                }
                BinOp::Div => {
                    if r.attr.is_none() && r.shift != 0.0 {
                        Some(Lin {
                            attr: l.attr,
                            scale: l.scale / r.shift,
                            shift: l.shift / r.shift,
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

fn combine(l: Lin, r: Lin, sign: f64) -> Option<Lin> {
    match (l.attr, r.attr) {
        (Some(a), None) => Some(Lin {
            attr: Some(a),
            scale: l.scale,
            shift: l.shift + sign * r.shift,
        }),
        (None, Some(a)) => Some(Lin {
            attr: Some(a),
            scale: sign * r.scale,
            shift: l.shift + sign * r.shift,
        }),
        (None, None) => Some(Lin {
            attr: None,
            scale: 0.0,
            shift: l.shift + sign * r.shift,
        }),
        (Some(_), Some(_)) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{SchemaRegistry, Time};

    fn setup() -> (SchemaRegistry, Event, Event) {
        let mut reg = SchemaRegistry::new();
        let t = reg.register_type("S", &["price", "volume"]).unwrap();
        let prev = Event::new_unchecked(t, Time(1), vec![Value::Float(10.0), Value::Int(100)]);
        let next = Event::new_unchecked(t, Time(2), vec![Value::Float(8.0), Value::Int(50)]);
        (reg, prev, next)
    }

    fn attr(role: EventRole, i: u16) -> CompiledExpr {
        CompiledExpr::Attr(role, AttrId(i))
    }

    #[test]
    fn eval_arithmetic_and_comparison() {
        let (_, prev, next) = setup();
        // prev.price > next.price  (10 > 8)
        let e = CompiledExpr::Bin {
            op: BinOp::Cmp(CmpOp::Gt),
            lhs: Box::new(attr(EventRole::Prev, 0)),
            rhs: Box::new(attr(EventRole::Cur, 0)),
        };
        assert!(e.eval_bool(Some(&prev), &next));
        // prev.price * 0.5 > next.price  (5 > 8) = false
        let e = CompiledExpr::Bin {
            op: BinOp::Cmp(CmpOp::Gt),
            lhs: Box::new(CompiledExpr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(attr(EventRole::Prev, 0)),
                rhs: Box::new(CompiledExpr::Const(Value::Float(0.5))),
            }),
            rhs: Box::new(attr(EventRole::Cur, 0)),
        };
        assert!(!e.eval_bool(Some(&prev), &next));
    }

    #[test]
    fn eval_logic() {
        let (_, _, next) = setup();
        let t = CompiledExpr::Const(Value::Bool(true));
        let f = CompiledExpr::Const(Value::Bool(false));
        let and = CompiledExpr::Bin {
            op: BinOp::And,
            lhs: Box::new(t.clone()),
            rhs: Box::new(f.clone()),
        };
        assert!(!and.eval_bool(None, &next));
        let or = CompiledExpr::Bin {
            op: BinOp::Or,
            lhs: Box::new(t),
            rhs: Box::new(f),
        };
        assert!(or.eval_bool(None, &next));
    }

    #[test]
    fn roles_detected() {
        let e = CompiledExpr::Bin {
            op: BinOp::Cmp(CmpOp::Lt),
            lhs: Box::new(attr(EventRole::Prev, 0)),
            rhs: Box::new(attr(EventRole::Cur, 1)),
        };
        assert!(e.uses_role(EventRole::Prev));
        assert!(e.uses_role(EventRole::Cur));
        assert!(!CompiledExpr::Const(Value::Int(1)).uses_role(EventRole::Prev));
    }

    #[test]
    fn linearize_simple_attr() {
        let (a, s, c) = linearize_prev(&attr(EventRole::Prev, 0)).unwrap();
        assert_eq!((a, s, c), (AttrId(0), 1.0, 0.0));
    }

    #[test]
    fn linearize_scaled_shifted() {
        // prev.price * 1.05 + 2
        let e = CompiledExpr::Bin {
            op: BinOp::Add,
            lhs: Box::new(CompiledExpr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(attr(EventRole::Prev, 0)),
                rhs: Box::new(CompiledExpr::Const(Value::Float(1.05))),
            }),
            rhs: Box::new(CompiledExpr::Const(Value::Int(2))),
        };
        let (a, s, c) = linearize_prev(&e).unwrap();
        assert_eq!(a, AttrId(0));
        assert!((s - 1.05).abs() < 1e-12);
        assert_eq!(c, 2.0);
    }

    #[test]
    fn linearize_rejects_nonlinear() {
        // prev.price * prev.volume
        let e = CompiledExpr::Bin {
            op: BinOp::Mul,
            lhs: Box::new(attr(EventRole::Prev, 0)),
            rhs: Box::new(attr(EventRole::Prev, 1)),
        };
        assert!(linearize_prev(&e).is_none());
        // expression referencing next
        assert!(linearize_prev(&attr(EventRole::Cur, 0)).is_none());
    }

    #[test]
    fn range_form_bound() {
        let (_, _, next) = setup();
        // prev.price * 2 < next.price  ⇒ prev.price < next.price / 2 = 4
        let rf = RangeForm {
            prev_attr: AttrId(0),
            op: CmpOp::Lt,
            bound_expr: attr(EventRole::Cur, 0),
            scale: 2.0,
            shift: 0.0,
        };
        let (op, b) = rf.bound(&next);
        assert_eq!(op, CmpOp::Lt);
        assert_eq!(b, 4.0);
        // negative scale flips the operator
        let rf = RangeForm { scale: -1.0, ..rf };
        let (op, b) = rf.bound(&next);
        assert_eq!(op, CmpOp::Gt);
        assert_eq!(b, -8.0);
    }

    #[test]
    fn predicate_set_lookup() {
        let mut set = PredicateSet::default();
        set.vertex.push(VertexPredicate {
            state: StateId(0),
            expr: CompiledExpr::Const(Value::Bool(true)),
        });
        set.edges.push(EdgePredicate {
            prev_state: StateId(0),
            next_state: StateId(1),
            expr: CompiledExpr::Const(Value::Bool(true)),
            range: None,
        });
        assert_eq!(set.vertex_preds(StateId(0)).count(), 1);
        assert_eq!(set.vertex_preds(StateId(1)).count(), 0);
        assert_eq!(set.edge_preds(StateId(0), StateId(1)).count(), 1);
        assert_eq!(set.edge_preds(StateId(1), StateId(0)).count(), 0);
    }
}
