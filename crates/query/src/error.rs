//! Errors for query parsing, validation and compilation.

use greta_types::TypeError;
use std::fmt;

/// Any error raised while turning query text into a [`crate::CompiledQuery`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error with byte position.
    Lex {
        /// Byte offset in the query text.
        pos: usize,
        /// Description of the unexpected input.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Byte offset in the query text.
        pos: usize,
        /// What the parser expected / found.
        msg: String,
    },
    /// Pattern violates the well-formedness rules of paper §2.
    InvalidPattern(String),
    /// A predicate is malformed or references unknown names.
    InvalidPredicate(String),
    /// Window specification invalid (zero durations, slide > within, …).
    InvalidWindow(String),
    /// Aggregate specification invalid.
    InvalidAggregate(String),
    /// Name resolution against the schema registry failed.
    Type(TypeError),
    /// Feature intentionally out of scope, with pointer to the paper section.
    Unsupported(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            QueryError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            QueryError::InvalidPattern(m) => write!(f, "invalid pattern: {m}"),
            QueryError::InvalidPredicate(m) => write!(f, "invalid predicate: {m}"),
            QueryError::InvalidWindow(m) => write!(f, "invalid window: {m}"),
            QueryError::InvalidAggregate(m) => write!(f, "invalid aggregate: {m}"),
            QueryError::Type(e) => write!(f, "type error: {e}"),
            QueryError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<TypeError> for QueryError {
    fn from(e: TypeError) -> Self {
        QueryError::Type(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = QueryError::Parse {
            pos: 17,
            msg: "expected PATTERN".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("PATTERN"));
    }

    #[test]
    fn type_error_wraps() {
        let e: QueryError = TypeError::UnknownType("X".into()).into();
        assert!(e.to_string().contains('X'));
    }
}
