//! # greta-query
//!
//! The compile-time half of GRETA (the *GRETA Query Analyzer* of Fig. 4).
//!
//! Pipeline:
//!
//! ```text
//!  query text ──lexer/parser──▶ QuerySpec (AST, Fig. 2 grammar)
//!      │                            │ normalize (desugar *, ?; §9)
//!      ▼                            ▼
//!  builder API ───────────▶ located pattern (unique StateIds per type occurrence)
//!                                   │ split (Algorithm 3, §5.1)
//!                                   ▼
//!                        positive + negative sub-patterns
//!                                   │ template (Algorithm 1, §4.1)
//!                                   ▼
//!                     CompiledQuery { GraphSpec*, predicates, windows, … }
//! ```
//!
//! The runtime half lives in `greta-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pattern;
pub mod predicate;
pub mod split;
pub mod template;

pub use ast::{AggFunc, AggSpec, BinOp, CmpOp, Expr, Pattern, QuerySpec, WindowSpec};
pub use compile::{CompiledQuery, GraphId, GraphSpec};
pub use error::QueryError;
pub use parser::parse_query;
pub use predicate::{CompiledExpr, EdgePredicate, EventRole, PredicateSet, VertexPredicate};
pub use split::{split_pattern, SplitPattern};
pub use template::{StateId, Template, TransKind};
