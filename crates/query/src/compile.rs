//! Query compilation: AST → [`CompiledQuery`] (the *GRETA configuration* of
//! Fig. 4).
//!
//! Compilation performs, in order: window validation, pattern
//! simplification + validation (§2), desugaring into disjoint alternatives
//! (§9), per-alternative location / split (Algorithm 3) / template
//! construction (Algorithm 1), predicate classification (§6), and name
//! resolution of aggregates and grouping attributes against the schema
//! registry.

use crate::ast::{AggFunc, BinOp, Expr, Pattern, QuerySpec, WindowSpec};
use crate::error::QueryError;
use crate::pattern::{desugar, simplify, validate};
use crate::predicate::{
    linearize_prev, CompiledExpr, EdgePredicate, EventRole, PredicateSet, RangeForm,
    VertexPredicate,
};
use crate::split::{split_pattern, SplitPattern};
use crate::template::{LPattern, StateId, Template};
use greta_types::{AttrId, SchemaRegistry, TypeId};
use std::collections::HashMap;

/// Id of a GRETA graph within a query plan (0 = positive root; higher ids
/// are negative sub-patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GraphId(pub u16);

/// One GRETA graph to maintain at runtime: a template plus (for negative
/// sub-patterns) the dependency connections of §5.1.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// Graph id within the plan.
    pub id: GraphId,
    /// The template (Algorithm 1) of this sub-pattern.
    pub template: Template,
    /// Parent graph (None for the positive root).
    pub parent: Option<GraphId>,
    /// *Previous* connection: state in the **parent** template whose events
    /// a finished trend of this graph invalidates (None = Case 3).
    pub previous: Option<StateId>,
    /// *Following* connection: state in the parent template whose future
    /// events invalidated events may no longer connect to (None = Case 2).
    pub following: Option<StateId>,
    /// Resolved event type of each state.
    pub state_types: Vec<(StateId, TypeId)>,
}

impl GraphSpec {
    /// Resolved event type of a state.
    pub fn type_of(&self, s: StateId) -> TypeId {
        self.state_types
            .iter()
            .find(|(id, _)| *id == s)
            .map(|(_, t)| *t)
            .expect("state belongs to this graph")
    }

    /// True for negative sub-pattern graphs.
    pub fn is_negative(&self) -> bool {
        self.parent.is_some()
    }
}

/// Resolved aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(E)`.
    Count(TypeId),
    /// `MIN(E.attr)`.
    Min(TypeId, AttrId),
    /// `MAX(E.attr)`.
    Max(TypeId, AttrId),
    /// `SUM(E.attr)`.
    Sum(TypeId, AttrId),
    /// `AVG(E.attr)` = SUM/COUNT.
    Avg(TypeId, AttrId),
}

/// A resolved aggregate with its output label.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAgg {
    /// Output column label.
    pub label: String,
    /// Resolved function.
    pub kind: AggKind,
}

/// One desugared alternative: a set of inter-dependent GRETA graphs plus its
/// predicates. Alternatives have pairwise-disjoint trend sets, so aggregates
/// combine additively across them (COUNT/SUM add; MIN/MAX fold).
#[derive(Debug, Clone, PartialEq)]
pub struct AltPlan {
    /// Graphs; index 0 is the positive root.
    pub graphs: Vec<GraphSpec>,
    /// Compiled predicates.
    pub predicates: PredicateSet,
}

impl AltPlan {
    /// The positive root graph.
    pub fn root(&self) -> &GraphSpec {
        &self.graphs[0]
    }

    /// Children (negative sub-patterns) of a graph.
    pub fn children_of(&self, g: GraphId) -> impl Iterator<Item = &GraphSpec> {
        self.graphs.iter().filter(move |s| s.parent == Some(g))
    }
}

/// A fully compiled event trend aggregation query.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// Disjoint pattern alternatives.
    pub alternatives: Vec<AltPlan>,
    /// Resolved aggregates (shared across alternatives).
    pub aggregates: Vec<CompiledAgg>,
    /// The window.
    pub window: WindowSpec,
    /// `GROUP-BY` attribute names (projection of the partition key that
    /// identifies an output group).
    pub group_by: Vec<String>,
    /// Stream partitioning attributes: `GROUP-BY` + equivalence attributes
    /// (§6). Events of types lacking some attribute partition on the
    /// sub-key they do have.
    pub partition_attrs: Vec<String>,
}

impl CompiledQuery {
    /// Compile a parsed query against a schema registry.
    pub fn compile(spec: &QuerySpec, reg: &SchemaRegistry) -> Result<CompiledQuery, QueryError> {
        if spec.window.within == 0 || spec.window.slide == 0 {
            return Err(QueryError::InvalidWindow(
                "WITHIN and SLIDE durations must be positive".into(),
            ));
        }
        if spec.aggregates.is_empty() {
            return Err(QueryError::InvalidAggregate(
                "the RETURN clause needs at least one aggregation function".into(),
            ));
        }

        let pattern = simplify(spec.pattern.clone());
        validate(&pattern)?;
        let bindings = binding_types(&pattern)?;

        // Resolve aggregates: target is an alias binding or a type name.
        let mut aggregates = Vec::with_capacity(spec.aggregates.len());
        for a in &spec.aggregates {
            aggregates.push(CompiledAgg {
                label: a.label.clone(),
                kind: resolve_agg(&a.func, &bindings, reg)?,
            });
        }

        // Partition attributes: GROUP-BY first, then equivalence attributes.
        let mut partition_attrs: Vec<String> = Vec::new();
        for g in &spec.group_by {
            push_unique(&mut partition_attrs, g);
        }
        if let Some(w) = &spec.where_expr {
            for conj in w.conjuncts() {
                if let Expr::Equiv(attrs) = conj {
                    for ea in attrs {
                        // Validate qualification.
                        if let Some(target) = &ea.target {
                            let ty = bindings.get(target.as_str()).ok_or_else(|| {
                                QueryError::InvalidPredicate(format!(
                                    "equivalence attribute `{target}.{}` references unknown alias/type",
                                    ea.attr
                                ))
                            })?;
                            reg.attr_id(ty, &ea.attr)?;
                        }
                        push_unique(&mut partition_attrs, &ea.attr);
                    }
                }
            }
        }
        // Each partition attribute must exist on at least one pattern type.
        for attr in &partition_attrs {
            let found = bindings.values().any(|ty| {
                reg.type_id(ty)
                    .is_ok_and(|t| reg.schema(t).attr(attr).is_some())
            });
            if !found {
                return Err(QueryError::InvalidPredicate(format!(
                    "partition attribute `{attr}` exists on no pattern event type"
                )));
            }
        }
        // RETURN plain attributes must be grouping attributes (Def. 2).
        for r in &spec.return_attrs {
            if !spec.group_by.contains(r) {
                return Err(QueryError::InvalidAggregate(format!(
                    "RETURN attribute `{r}` is not a GROUP-BY attribute"
                )));
            }
        }

        let mut alternatives = Vec::new();
        for alt in desugar(&pattern)? {
            let lp = LPattern::locate(&alt)?;
            let split = split_pattern(&lp)?;
            let graphs = flatten_graphs(&split, reg)?;
            let predicates =
                compile_predicates(spec.where_expr.as_ref(), &graphs, &partition_attrs, reg)?;
            alternatives.push(AltPlan { graphs, predicates });
        }

        Ok(CompiledQuery {
            alternatives,
            aggregates,
            window: spec.window,
            group_by: spec.group_by.clone(),
            partition_attrs,
        })
    }

    /// Human-readable plan description (EXPLAIN-style): one block per
    /// alternative with its graph tree, templates, predicates and window.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "window: WITHIN {} SLIDE {} (k = {} windows/event)",
            self.window.within,
            self.window.slide,
            self.window.windows_per_event()
        )
        .unwrap();
        if !self.group_by.is_empty() {
            writeln!(out, "group by: {}", self.group_by.join(", ")).unwrap();
        }
        if !self.partition_attrs.is_empty() {
            writeln!(out, "partition by: {}", self.partition_attrs.join(", ")).unwrap();
        }
        writeln!(
            out,
            "aggregates: {}",
            self.aggregates
                .iter()
                .map(|a| a.label.clone())
                .collect::<Vec<_>>()
                .join(", ")
        )
        .unwrap();
        for (i, alt) in self.alternatives.iter().enumerate() {
            writeln!(out, "alternative {i}:").unwrap();
            for g in &alt.graphs {
                let role = match (&g.parent, &g.previous, &g.following) {
                    (None, _, _) => "positive root".to_string(),
                    (Some(p), Some(_), Some(_)) => format!("negative (case 1) under graph {}", p.0),
                    (Some(p), Some(_), None) => format!("negative (case 2) under graph {}", p.0),
                    (Some(p), None, _) => format!("negative (case 3) under graph {}", p.0),
                };
                let states: Vec<String> = g
                    .template
                    .states
                    .iter()
                    .map(|s| {
                        let mut tags = String::new();
                        if g.template.is_start(s.occ) {
                            tags.push_str(" START");
                        }
                        if g.template.is_end(s.occ) {
                            tags.push_str(" END");
                        }
                        format!("{}{}", s.binding, tags)
                    })
                    .collect();
                writeln!(
                    out,
                    "  graph {} [{}]: states {{{}}}",
                    g.id.0,
                    role,
                    states.join(", ")
                )
                .unwrap();
            }
            writeln!(
                out,
                "  predicates: {} vertex, {} edge ({} range-indexable)",
                alt.predicates.vertex.len(),
                alt.predicates.edges.len(),
                alt.predicates
                    .edges
                    .iter()
                    .filter(|e| e.range.is_some())
                    .count()
            )
            .unwrap();
        }
        out
    }

    /// Parse + compile in one step.
    ///
    /// ```
    /// use greta_types::SchemaRegistry;
    /// use greta_query::CompiledQuery;
    /// let mut reg = SchemaRegistry::new();
    /// reg.register_type("Stock", &["price", "company", "sector"]).unwrap();
    /// let q = CompiledQuery::parse(
    ///     "RETURN sector, COUNT(*) PATTERN Stock S+ \
    ///      WHERE [company, sector] AND S.price > NEXT(S).price \
    ///      GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds",
    ///     &reg,
    /// ).unwrap();
    /// assert_eq!(q.alternatives.len(), 1);
    /// assert_eq!(q.partition_attrs, vec!["sector", "company"]);
    /// ```
    pub fn parse(text: &str, reg: &SchemaRegistry) -> Result<CompiledQuery, QueryError> {
        let spec = crate::parser::parse_query(text)?;
        Self::compile(&spec, reg)
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Map of binding (alias or type name) → type name, over the whole pattern.
fn binding_types(p: &Pattern) -> Result<HashMap<String, String>, QueryError> {
    let mut map: HashMap<String, String> = HashMap::new();
    for (ty, binding) in p.leaves() {
        if let Some(prev) = map.get(binding) {
            if prev != ty {
                return Err(QueryError::InvalidPattern(format!(
                    "alias `{binding}` is bound to both `{prev}` and `{ty}`"
                )));
            }
        } else {
            map.insert(binding.to_string(), ty.to_string());
        }
        // The bare type name also resolves to itself.
        map.entry(ty.to_string()).or_insert_with(|| ty.to_string());
    }
    Ok(map)
}

fn resolve_agg(
    f: &AggFunc,
    bindings: &HashMap<String, String>,
    reg: &SchemaRegistry,
) -> Result<AggKind, QueryError> {
    let resolve_ty = |target: &str| -> Result<TypeId, QueryError> {
        let ty_name = bindings.get(target).map(String::as_str).unwrap_or(target);
        Ok(reg.type_id(ty_name)?)
    };
    Ok(match f {
        AggFunc::CountStar => AggKind::CountStar,
        AggFunc::Count(t) => AggKind::Count(resolve_ty(t)?),
        AggFunc::Min(t, a) | AggFunc::Max(t, a) | AggFunc::Sum(t, a) | AggFunc::Avg(t, a) => {
            let tid = resolve_ty(t)?;
            let schema = reg.schema(tid);
            let aid = schema
                .attr(a)
                .ok_or_else(|| greta_types::TypeError::UnknownAttr {
                    ty: schema.name.clone(),
                    attr: a.clone(),
                })?;
            match f {
                AggFunc::Min(..) => AggKind::Min(tid, aid),
                AggFunc::Max(..) => AggKind::Max(tid, aid),
                AggFunc::Sum(..) => AggKind::Sum(tid, aid),
                AggFunc::Avg(..) => AggKind::Avg(tid, aid),
                _ => unreachable!(),
            }
        }
    })
}

/// Flatten the split tree into a graph list (root first, BFS), resolving
/// state types.
fn flatten_graphs(
    split: &SplitPattern,
    reg: &SchemaRegistry,
) -> Result<Vec<GraphSpec>, QueryError> {
    let mut graphs = Vec::new();
    flatten_into(split, None, None, None, reg, &mut graphs)?;
    Ok(graphs)
}

fn flatten_into(
    split: &SplitPattern,
    parent: Option<GraphId>,
    previous: Option<StateId>,
    following: Option<StateId>,
    reg: &SchemaRegistry,
    out: &mut Vec<GraphSpec>,
) -> Result<(), QueryError> {
    let template = Template::build(&split.positive)?;
    let mut state_types = Vec::with_capacity(template.states.len());
    for s in &template.states {
        state_types.push((s.occ, reg.type_id(&s.type_name)?));
    }
    let id = GraphId(out.len() as u16);
    out.push(GraphSpec {
        id,
        template,
        parent,
        previous,
        following,
        state_types,
    });
    for neg in &split.negatives {
        flatten_into(&neg.split, Some(id), neg.previous, neg.following, reg, out)?;
    }
    Ok(())
}

/// Where (graph, state) a binding occurs.
type BindingSites = HashMap<String, Vec<(GraphId, StateId, TypeId)>>;

fn binding_sites(graphs: &[GraphSpec]) -> BindingSites {
    let mut map: BindingSites = HashMap::new();
    for g in graphs {
        for s in &g.template.states {
            let tid = g.type_of(s.occ);
            map.entry(s.binding.clone())
                .or_default()
                .push((g.id, s.occ, tid));
            if s.binding != s.type_name {
                map.entry(s.type_name.clone())
                    .or_default()
                    .push((g.id, s.occ, tid));
            }
        }
    }
    map
}

fn compile_predicates(
    where_expr: Option<&Expr>,
    graphs: &[GraphSpec],
    partition_attrs: &[String],
    reg: &SchemaRegistry,
) -> Result<PredicateSet, QueryError> {
    let mut set = PredicateSet {
        partition_attrs: partition_attrs.to_vec(),
        ..Default::default()
    };
    let Some(w) = where_expr else { return Ok(set) };
    let sites = binding_sites(graphs);

    for conj in w.conjuncts() {
        match conj {
            Expr::Equiv(_) => {} // already folded into partition_attrs
            e if e.uses_next() => compile_edge(e, &sites, reg, &mut set)?,
            e => compile_vertex(e, &sites, reg, &mut set)?,
        }
    }
    Ok(set)
}

fn single_target(targets: Vec<&str>, what: &str) -> Result<Option<String>, QueryError> {
    let mut t: Option<&str> = None;
    for x in targets {
        match t {
            None => t = Some(x),
            Some(prev) if prev == x => {}
            Some(prev) => {
                return Err(QueryError::InvalidPredicate(format!(
                    "a single predicate may reference one {what} event, found `{prev}` and `{x}`"
                )))
            }
        }
    }
    Ok(t.map(str::to_string))
}

fn compile_vertex(
    e: &Expr,
    sites: &BindingSites,
    reg: &SchemaRegistry,
    set: &mut PredicateSet,
) -> Result<(), QueryError> {
    let target = single_target(e.plain_targets(), "subject")?.ok_or_else(|| {
        QueryError::InvalidPredicate(format!("predicate references no event attribute: {e:?}"))
    })?;
    let Some(states) = sites.get(&target) else {
        // Target absent from this alternative (dropped by desugaring).
        return Ok(());
    };
    for (_, state, tid) in states {
        let expr = compile_expr(e, reg, *tid, *tid)?;
        set.vertex.push(VertexPredicate {
            state: *state,
            expr,
        });
    }
    Ok(())
}

fn compile_edge(
    e: &Expr,
    sites: &BindingSites,
    reg: &SchemaRegistry,
    set: &mut PredicateSet,
) -> Result<(), QueryError> {
    let prev_b = single_target(e.plain_targets(), "previous")?;
    let next_b = single_target(e.next_targets(), "next")?.expect("uses_next checked");
    let prev_b = prev_b.ok_or_else(|| {
        QueryError::InvalidPredicate(
            "edge predicate must reference an attribute of the previous event".into(),
        )
    })?;
    let (Some(prev_sites), Some(next_sites)) = (sites.get(&prev_b), sites.get(&next_b)) else {
        return Ok(()); // binding absent from this alternative
    };
    for (pg, ps, pt) in prev_sites {
        for (ng, ns, nt) in next_sites {
            if pg != ng {
                continue; // edges never cross graphs
            }
            let expr = compile_expr(e, reg, *pt, *nt)?;
            let range = extract_range(&expr);
            set.edges.push(EdgePredicate {
                prev_state: *ps,
                next_state: *ns,
                expr,
                range,
            });
        }
    }
    Ok(())
}

/// Resolve an AST expression to a [`CompiledExpr`]: plain `E.attr` reads the
/// previous event (role `Prev`), `NEXT(E).attr` the next/current event.
/// For vertex predicates `prev_ty == next_ty` and plain refs become `Prev`,
/// which the caller rewrites — see below.
fn compile_expr(
    e: &Expr,
    reg: &SchemaRegistry,
    prev_ty: TypeId,
    next_ty: TypeId,
) -> Result<CompiledExpr, QueryError> {
    let compiled = compile_expr_inner(e, reg, prev_ty, next_ty)?;
    // Vertex predicates (no NEXT refs): rewrite Prev → Cur so evaluation
    // reads the single event under test.
    if !e.uses_next() {
        Ok(rewrite_prev_to_cur(compiled))
    } else {
        Ok(compiled)
    }
}

fn rewrite_prev_to_cur(e: CompiledExpr) -> CompiledExpr {
    match e {
        CompiledExpr::Attr(EventRole::Prev, a) => CompiledExpr::Attr(EventRole::Cur, a),
        CompiledExpr::Bin { op, lhs, rhs } => CompiledExpr::Bin {
            op,
            lhs: Box::new(rewrite_prev_to_cur(*lhs)),
            rhs: Box::new(rewrite_prev_to_cur(*rhs)),
        },
        other => other,
    }
}

fn compile_expr_inner(
    e: &Expr,
    reg: &SchemaRegistry,
    prev_ty: TypeId,
    next_ty: TypeId,
) -> Result<CompiledExpr, QueryError> {
    use greta_types::Value;
    Ok(match e {
        Expr::Int(i) => CompiledExpr::Const(Value::Int(*i)),
        Expr::Float(f) => CompiledExpr::Const(Value::Float(*f)),
        Expr::Str(s) => CompiledExpr::Const(Value::from(s.as_str())),
        Expr::Bool(b) => CompiledExpr::Const(Value::Bool(*b)),
        Expr::Attr { attr, .. } => {
            let schema = reg.schema(prev_ty);
            let aid = schema
                .attr(attr)
                .ok_or_else(|| greta_types::TypeError::UnknownAttr {
                    ty: schema.name.clone(),
                    attr: attr.clone(),
                })?;
            CompiledExpr::Attr(EventRole::Prev, aid)
        }
        Expr::NextAttr { attr, .. } => {
            let schema = reg.schema(next_ty);
            let aid = schema
                .attr(attr)
                .ok_or_else(|| greta_types::TypeError::UnknownAttr {
                    ty: schema.name.clone(),
                    attr: attr.clone(),
                })?;
            CompiledExpr::Attr(EventRole::Cur, aid)
        }
        Expr::Bin { op, lhs, rhs } => CompiledExpr::Bin {
            op: *op,
            lhs: Box::new(compile_expr_inner(lhs, reg, prev_ty, next_ty)?),
            rhs: Box::new(compile_expr_inner(rhs, reg, prev_ty, next_ty)?),
        },
        Expr::Equiv(_) => {
            return Err(QueryError::InvalidPredicate(
                "equivalence predicates may only appear as top-level conjuncts".into(),
            ))
        }
    })
}

/// Extract a [`RangeForm`] from a comparison that is linear in one prev
/// attribute on one side and next-only on the other.
fn extract_range(e: &CompiledExpr) -> Option<RangeForm> {
    let CompiledExpr::Bin {
        op: BinOp::Cmp(op),
        lhs,
        rhs,
    } = e
    else {
        return None;
    };
    let lhs_prev = lhs.uses_role(EventRole::Prev);
    let rhs_prev = rhs.uses_role(EventRole::Prev);
    let (prev_side, next_side, op) = match (lhs_prev, rhs_prev) {
        (true, false) if !lhs.uses_role(EventRole::Cur) => (lhs, rhs, *op),
        (false, true) if !rhs.uses_role(EventRole::Cur) => (rhs, lhs, op.flip()),
        _ => return None,
    };
    let (prev_attr, scale, shift) = linearize_prev(prev_side)?;
    if scale == 0.0 {
        return None;
    }
    Some(RangeForm {
        prev_attr,
        op,
        bound_expr: (**next_side).clone(),
        scale,
        shift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use greta_types::SchemaRegistry;

    fn stock_registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Stock", &["price", "volume", "company", "sector"])
            .unwrap();
        reg
    }

    fn abc_registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        for t in ["A", "B", "C", "D", "E"] {
            reg.register_type(t, &["attr"]).unwrap();
        }
        reg
    }

    #[test]
    fn compile_q1() {
        let reg = stock_registry();
        let q = CompiledQuery::parse(
            "RETURN sector, COUNT(*) PATTERN Stock S+ \
             WHERE [company, sector] AND S.price > NEXT(S).price \
             GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds",
            &reg,
        )
        .unwrap();
        assert_eq!(q.alternatives.len(), 1);
        let alt = &q.alternatives[0];
        assert_eq!(alt.graphs.len(), 1);
        assert_eq!(alt.graphs[0].template.states.len(), 1);
        assert_eq!(q.partition_attrs, vec!["sector", "company"]);
        assert_eq!(q.group_by, vec!["sector"]);
        // One edge predicate S→S with a range form (prev.price > next.price).
        assert_eq!(alt.predicates.edges.len(), 1);
        let ep = &alt.predicates.edges[0];
        let rf = ep.range.as_ref().unwrap();
        assert_eq!(rf.op, CmpOp::Gt);
        assert_eq!(rf.scale, 1.0);
    }

    #[test]
    fn compile_q1_variation_with_factor() {
        let reg = stock_registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN Stock S+ \
             WHERE S.price * 1.05 < NEXT(S).price \
             WITHIN 600 SLIDE 10",
            &reg,
        )
        .unwrap();
        let rf = q.alternatives[0].predicates.edges[0]
            .range
            .as_ref()
            .unwrap();
        assert_eq!(rf.op, CmpOp::Lt);
        assert!((rf.scale - 1.05).abs() < 1e-12);
    }

    #[test]
    fn compile_nested_negation_graph_tree() {
        let reg = abc_registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ \
             WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let alt = &q.alternatives[0];
        assert_eq!(alt.graphs.len(), 3);
        let root = &alt.graphs[0];
        assert!(root.parent.is_none());
        let cd = &alt.graphs[1];
        assert_eq!(cd.parent, Some(GraphId(0)));
        assert!(cd.previous.is_some() && cd.following.is_some());
        let e = &alt.graphs[2];
        assert_eq!(e.parent, Some(GraphId(1)));
        assert_eq!(alt.children_of(GraphId(0)).count(), 1);
        assert_eq!(alt.children_of(GraphId(1)).count(), 1);
    }

    #[test]
    fn compile_star_produces_alternatives() {
        let reg = abc_registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A*, B) WITHIN 10 SLIDE 10",
            &reg,
        )
        .unwrap();
        assert_eq!(q.alternatives.len(), 2);
        // Second alternative is just B; its graphs have one state and the
        // A-predicates (none here) are dropped.
        assert_eq!(q.alternatives[1].graphs[0].template.states.len(), 1);
    }

    #[test]
    fn aggregates_resolve_via_alias_or_type() {
        let reg = stock_registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(S), MIN(S.price), AVG(Stock.volume) \
             PATTERN Stock S+ WITHIN 10 SLIDE 10",
            &reg,
        )
        .unwrap();
        let tid = reg.type_id("Stock").unwrap();
        assert_eq!(q.aggregates[0].kind, AggKind::Count(tid));
        assert!(matches!(q.aggregates[1].kind, AggKind::Min(t, _) if t == tid));
        assert!(matches!(q.aggregates[2].kind, AggKind::Avg(t, a) if t == tid && a.0 == 1));
    }

    #[test]
    fn rejects_bad_windows_and_aggregates() {
        let reg = stock_registry();
        assert!(matches!(
            CompiledQuery::parse("RETURN COUNT(*) PATTERN Stock S+ WITHIN 0 SLIDE 10", &reg),
            Err(QueryError::InvalidWindow(_))
        ));
        assert!(matches!(
            CompiledQuery::parse("RETURN sector PATTERN Stock S+ WITHIN 10 SLIDE 10", &reg),
            Err(QueryError::InvalidAggregate(_))
        ));
        // RETURN attr not grouped
        assert!(matches!(
            CompiledQuery::parse(
                "RETURN company, COUNT(*) PATTERN Stock S+ GROUP-BY sector WITHIN 10 SLIDE 10",
                &reg
            ),
            Err(QueryError::InvalidAggregate(_))
        ));
    }

    #[test]
    fn rejects_unknown_names() {
        let reg = stock_registry();
        assert!(
            CompiledQuery::parse("RETURN COUNT(*) PATTERN Bond B+ WITHIN 10 SLIDE 10", &reg)
                .is_err()
        );
        assert!(CompiledQuery::parse(
            "RETURN MIN(S.nope) PATTERN Stock S+ WITHIN 10 SLIDE 10",
            &reg
        )
        .is_err());
        assert!(CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN Stock S+ WHERE [nope] WITHIN 10 SLIDE 10",
            &reg
        )
        .is_err());
    }

    #[test]
    fn rejects_conflicting_alias() {
        let reg = abc_registry();
        let err = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A X, B X) WITHIN 10 SLIDE 10",
            &reg,
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::InvalidPattern(_)));
    }

    #[test]
    fn edge_predicates_never_cross_graphs() {
        // Predicate on the negative type E compiles into the E graph only;
        // the A-predicate stays in the root graph.
        let reg = abc_registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A+, NOT SEQ(C, D), B) \
             WHERE A.attr < NEXT(A).attr AND C.attr < NEXT(D).attr \
             WITHIN 10 SLIDE 10",
            &reg,
        )
        .unwrap();
        let alt = &q.alternatives[0];
        // A→A edge pred in root; C→D edge pred in the negative graph.
        let root_states: Vec<StateId> = alt.graphs[0]
            .template
            .states
            .iter()
            .map(|s| s.occ)
            .collect();
        let neg_states: Vec<StateId> = alt.graphs[1]
            .template
            .states
            .iter()
            .map(|s| s.occ)
            .collect();
        assert_eq!(alt.predicates.edges.len(), 2);
        for e in &alt.predicates.edges {
            let in_root =
                root_states.contains(&e.prev_state) && root_states.contains(&e.next_state);
            let in_neg = neg_states.contains(&e.prev_state) && neg_states.contains(&e.next_state);
            assert!(in_root || in_neg);
        }
    }

    #[test]
    fn vertex_predicate_attached_to_state() {
        let reg = stock_registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN Stock S+ WHERE S.volume > 100 WITHIN 10 SLIDE 10",
            &reg,
        )
        .unwrap();
        let alt = &q.alternatives[0];
        assert_eq!(alt.predicates.vertex.len(), 1);
        assert!(alt.predicates.edges.is_empty());
    }

    #[test]
    fn describe_summarizes_the_plan() {
        let reg = abc_registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ \
             WHERE A.attr < NEXT(A).attr WITHIN 100 SLIDE 10",
            &reg,
        )
        .unwrap();
        let d = q.describe();
        assert!(d.contains("positive root"), "{d}");
        assert!(d.contains("negative (case 1)"), "{d}");
        assert!(d.contains("k = 10"), "{d}");
        assert!(d.contains("1 range-indexable"), "{d}");
        assert!(d.contains("A START"), "{d}");
        assert!(d.contains("B END"), "{d}");
    }

    #[test]
    fn query_q2_compiles_end_to_end() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Start", &["job", "mapper"]).unwrap();
        reg.register_type("Measurement", &["job", "mapper", "cpu", "load"])
            .unwrap();
        reg.register_type("End", &["job", "mapper"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN mapper, SUM(M.cpu) \
             PATTERN SEQ(Start S, Measurement M+, End E) \
             WHERE [job, mapper] AND M.load < NEXT(M).load \
             GROUP-BY mapper WITHIN 1 minute SLIDE 30 seconds",
            &reg,
        )
        .unwrap();
        assert_eq!(q.partition_attrs, vec!["mapper", "job"]);
        let alt = &q.alternatives[0];
        assert_eq!(alt.graphs[0].template.states.len(), 3);
        assert_eq!(alt.predicates.edges.len(), 1); // M→M only
    }

    #[test]
    fn query_q3_compiles_end_to_end() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment", "speed"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*), AVG(P.speed) \
             PATTERN SEQ(NOT Accident A, Position P+) \
             WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
             GROUP-BY segment WITHIN 5 minutes SLIDE 1 minute",
            &reg,
        )
        .unwrap();
        let alt = &q.alternatives[0];
        assert_eq!(alt.graphs.len(), 2);
        let neg = &alt.graphs[1];
        assert_eq!(neg.previous, None); // Case 3: leading negation
        assert!(neg.following.is_some());
        assert_eq!(q.partition_attrs, vec!["segment", "vehicle"]);
    }
}
