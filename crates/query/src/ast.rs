//! Abstract syntax for event trend aggregation queries (paper Fig. 2).

use std::fmt;

/// Kleene pattern (paper Definition 1, plus the §9 sugar `*`, `?`, `∨`, `∧`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// An event type, optionally with a query-local alias
    /// (`PATTERN Stock S+` binds alias `S`).
    Type {
        /// Schema event type name.
        name: String,
        /// Alias used in predicates/aggregates; defaults to the type name.
        alias: Option<String>,
    },
    /// Kleene plus `P+`: one or more matches of `P`.
    Plus(Box<Pattern>),
    /// Kleene star `P*` = `P+ | ε` (syntactic sugar, §9).
    Star(Box<Pattern>),
    /// Optional `P?` = `P | ε` (syntactic sugar, §9).
    Optional(Box<Pattern>),
    /// Event sequence. Stored n-ary, semantically left-nested binary `SEQ`.
    Seq(Vec<Pattern>),
    /// Negation `NOT P`; only valid inside a `SEQ` (paper §2).
    Not(Box<Pattern>),
    /// Disjunction `P ∨ Q` (§9).
    Or(Box<Pattern>, Box<Pattern>),
    /// Conjunction `P ∧ Q` (§9).
    And(Box<Pattern>, Box<Pattern>),
}

impl Pattern {
    /// Leaf pattern for an event type.
    pub fn ty(name: &str) -> Pattern {
        Pattern::Type {
            name: name.to_string(),
            alias: None,
        }
    }

    /// Leaf pattern with an alias.
    pub fn ty_as(name: &str, alias: &str) -> Pattern {
        Pattern::Type {
            name: name.to_string(),
            alias: Some(alias.to_string()),
        }
    }

    /// `self+`.
    pub fn plus(self) -> Pattern {
        Pattern::Plus(Box::new(self))
    }

    /// `self*`.
    pub fn star(self) -> Pattern {
        Pattern::Star(Box::new(self))
    }

    /// `self?`.
    pub fn optional(self) -> Pattern {
        Pattern::Optional(Box::new(self))
    }

    /// `SEQ(parts…)`.
    pub fn seq(parts: Vec<Pattern>) -> Pattern {
        Pattern::Seq(parts)
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)] // domain verb from the paper's grammar
    pub fn not(self) -> Pattern {
        Pattern::Not(Box::new(self))
    }

    /// The alias this leaf binds (alias if given, else the type name).
    /// Only meaningful on [`Pattern::Type`].
    pub fn binding(&self) -> Option<&str> {
        match self {
            Pattern::Type { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            _ => None,
        }
    }

    /// Pattern size: number of event types and operators (paper Def. 1).
    pub fn size(&self) -> usize {
        match self {
            Pattern::Type { .. } => 1,
            Pattern::Plus(p) | Pattern::Star(p) | Pattern::Optional(p) | Pattern::Not(p) => {
                1 + p.size()
            }
            Pattern::Seq(ps) => 1 + ps.iter().map(Pattern::size).sum::<usize>(),
            Pattern::Or(a, b) | Pattern::And(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// True when the pattern contains no negation (paper Def. 1: *positive*).
    pub fn is_positive(&self) -> bool {
        match self {
            Pattern::Type { .. } => true,
            Pattern::Plus(p) | Pattern::Star(p) | Pattern::Optional(p) => p.is_positive(),
            Pattern::Seq(ps) => ps.iter().all(Pattern::is_positive),
            Pattern::Not(_) => false,
            Pattern::Or(a, b) | Pattern::And(a, b) => a.is_positive() && b.is_positive(),
        }
    }

    /// True when the pattern contains at least one Kleene plus/star
    /// (paper Def. 1: *Kleene pattern*).
    pub fn has_kleene(&self) -> bool {
        match self {
            Pattern::Type { .. } => false,
            Pattern::Plus(_) | Pattern::Star(_) => true,
            Pattern::Optional(p) | Pattern::Not(p) => p.has_kleene(),
            Pattern::Seq(ps) => ps.iter().any(Pattern::has_kleene),
            Pattern::Or(a, b) | Pattern::And(a, b) => a.has_kleene() || b.has_kleene(),
        }
    }

    /// All `(type name, binding)` leaves, left to right.
    pub fn leaves(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<(&'a str, &'a str)>) {
        match self {
            Pattern::Type { name, alias } => {
                out.push((name.as_str(), alias.as_deref().unwrap_or(name.as_str())))
            }
            Pattern::Plus(p) | Pattern::Star(p) | Pattern::Optional(p) | Pattern::Not(p) => {
                p.collect_leaves(out)
            }
            Pattern::Seq(ps) => ps.iter().for_each(|p| p.collect_leaves(out)),
            Pattern::Or(a, b) | Pattern::And(a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Type { name, alias } => match alias {
                Some(a) if a != name => write!(f, "{name} {a}"),
                _ => write!(f, "{name}"),
            },
            Pattern::Plus(p) => write!(f, "({p})+"),
            Pattern::Star(p) => write!(f, "({p})*"),
            Pattern::Optional(p) => write!(f, "({p})?"),
            Pattern::Seq(ps) => {
                write!(f, "SEQ(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pattern::Not(p) => write!(f, "NOT {p}"),
            Pattern::Or(a, b) => write!(f, "({a} OR {b})"),
            Pattern::And(a, b) => write!(f, "({a} AND {b})"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering between two values.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }

    /// Mirror the operator (swap operand sides): `a < b` ⇔ `b > a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Binary operators of the predicate grammar (paper Fig. 2, production `O`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Comparison.
    Cmp(CmpOp),
}

/// Predicate / arithmetic expression (paper Fig. 2, production `θ`).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `E.attr` — attribute of the bound event (in edge predicates: the
    /// *earlier* of the two adjacent events).
    Attr {
        /// Alias or type name the attribute is read from.
        target: String,
        /// Attribute name.
        attr: String,
    },
    /// `NEXT(E).attr` — attribute of the *next* adjacent event in the trend.
    NextAttr {
        /// Alias or type name.
        target: String,
        /// Attribute name.
        attr: String,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Equivalence predicate `[attr, …]` (paper §6): all events in a trend
    /// carry equal values of these attributes.
    Equiv(Vec<EquivAttr>),
}

/// One attribute inside an equivalence predicate, optionally qualified
/// (`[P.vehicle, segment]` in query Q3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EquivAttr {
    /// Alias/type qualifier, if any.
    pub target: Option<String>,
    /// Attribute name.
    pub attr: String,
}

impl Expr {
    /// `lhs op rhs` convenience constructor.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `target.attr`.
    pub fn attr(target: &str, attr: &str) -> Expr {
        Expr::Attr {
            target: target.into(),
            attr: attr.into(),
        }
    }

    /// `NEXT(target).attr`.
    pub fn next_attr(target: &str, attr: &str) -> Expr {
        Expr::NextAttr {
            target: target.into(),
            attr: attr.into(),
        }
    }

    /// Split a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Bin {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut v = lhs.conjuncts();
                v.extend(rhs.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// True if the expression mentions `NEXT(_)`.
    pub fn uses_next(&self) -> bool {
        match self {
            Expr::NextAttr { .. } => true,
            Expr::Bin { lhs, rhs, .. } => lhs.uses_next() || rhs.uses_next(),
            _ => false,
        }
    }

    /// Targets (aliases/type names) referenced without `NEXT`.
    pub fn plain_targets(&self) -> Vec<&str> {
        let mut v = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Attr { target, .. } = e {
                v.push(target.as_str());
            }
        });
        v
    }

    /// Targets referenced via `NEXT`.
    pub fn next_targets(&self) -> Vec<&str> {
        let mut v = Vec::new();
        self.walk(&mut |e| {
            if let Expr::NextAttr { target, .. } = e {
                v.push(target.as_str());
            }
        });
        v
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        if let Expr::Bin { lhs, rhs, .. } = self {
            lhs.walk(f);
            rhs.walk(f);
        }
    }
}

/// Aggregation function (paper Def. 2 / Fig. 2 production `A`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — number of trends per group.
    CountStar,
    /// `COUNT(E)` — number of `E` occurrences across all trends per group.
    Count(String),
    /// `MIN(E.attr)` over all `E` events in all trends per group.
    Min(String, String),
    /// `MAX(E.attr)`.
    Max(String, String),
    /// `SUM(E.attr)` — sums over every occurrence in every trend.
    Sum(String, String),
    /// `AVG(E.attr)` = `SUM(E.attr) / COUNT(E)`.
    Avg(String, String),
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => write!(f, "COUNT(*)"),
            AggFunc::Count(t) => write!(f, "COUNT({t})"),
            AggFunc::Min(t, a) => write!(f, "MIN({t}.{a})"),
            AggFunc::Max(t, a) => write!(f, "MAX({t}.{a})"),
            AggFunc::Sum(t, a) => write!(f, "SUM({t}.{a})"),
            AggFunc::Avg(t, a) => write!(f, "AVG({t}.{a})"),
        }
    }
}

/// One aggregate in the `RETURN` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Output column label.
    pub label: String,
}

impl AggSpec {
    /// Aggregate with a default label derived from the function.
    pub fn new(func: AggFunc) -> AggSpec {
        let label = func.to_string();
        AggSpec { func, label }
    }
}

/// `WITHIN`/`SLIDE` window (durations in ticks; parser converts time units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    /// Window length in ticks.
    pub within: u64,
    /// Slide in ticks.
    pub slide: u64,
}

impl WindowSpec {
    /// Construct, without validation (validated at compile time).
    pub fn new(within: u64, slide: u64) -> WindowSpec {
        WindowSpec { within, slide }
    }

    /// Number of windows a single event falls into (`k` of Theorem 8.1).
    pub fn windows_per_event(&self) -> u64 {
        self.within.div_ceil(self.slide)
    }
}

/// A complete event trend aggregation query (paper Definition 2).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Plain attributes in the `RETURN` clause (must be grouping attributes).
    pub return_attrs: Vec<String>,
    /// Aggregates in the `RETURN` clause.
    pub aggregates: Vec<AggSpec>,
    /// The Kleene pattern.
    pub pattern: Pattern,
    /// Optional `WHERE` predicate.
    pub where_expr: Option<Expr>,
    /// `GROUP-BY` attributes.
    pub group_by: Vec<String>,
    /// `WITHIN … SLIDE …`.
    pub window: WindowSpec,
}

impl QuerySpec {
    /// Minimal query: one pattern, `COUNT(*)`, a single window covering
    /// `within` ticks tumbling by the same amount.
    pub fn count_star(pattern: Pattern, within: u64) -> QuerySpec {
        QuerySpec {
            return_attrs: vec![],
            aggregates: vec![AggSpec::new(AggFunc::CountStar)],
            pattern,
            where_expr: None,
            group_by: vec![],
            window: WindowSpec::new(within, within),
        }
    }

    /// Replace the window.
    pub fn with_window(mut self, within: u64, slide: u64) -> QuerySpec {
        self.window = WindowSpec::new(within, slide);
        self
    }

    /// Add a `WHERE` conjunct.
    pub fn with_where(mut self, e: Expr) -> QuerySpec {
        self.where_expr = Some(match self.where_expr.take() {
            None => e,
            Some(old) => Expr::bin(BinOp::And, old, e),
        });
        self
    }

    /// Set grouping attributes.
    pub fn with_group_by(mut self, attrs: &[&str]) -> QuerySpec {
        self.group_by = attrs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Replace the aggregate list.
    pub fn with_aggregates(mut self, aggs: Vec<AggFunc>) -> QuerySpec {
        self.aggregates = aggs.into_iter().map(AggSpec::new).collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_constructors_and_display() {
        // (SEQ(A+, B))+ — the running example of §4.
        let p = Pattern::seq(vec![Pattern::ty("A").plus(), Pattern::ty("B")]).plus();
        assert_eq!(p.to_string(), "(SEQ((A)+, B))+");
        assert_eq!(p.size(), 5); // A, +, B, SEQ, +
        assert!(p.is_positive());
        assert!(p.has_kleene());
    }

    #[test]
    fn negative_pattern_flags() {
        let p = Pattern::seq(vec![
            Pattern::ty("A").plus(),
            Pattern::ty("C").not(),
            Pattern::ty("B"),
        ]);
        assert!(!p.is_positive());
        assert!(p.has_kleene());
        assert_eq!(p.leaves(), vec![("A", "A"), ("C", "C"), ("B", "B")]);
    }

    #[test]
    fn alias_binding() {
        let p = Pattern::ty_as("Stock", "S");
        assert_eq!(p.binding(), Some("S"));
        assert_eq!(p.to_string(), "Stock S");
        assert_eq!(Pattern::ty("B").binding(), Some("B"));
    }

    #[test]
    fn cmp_eval_and_flip() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Less));
        assert!(!CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ne.eval(Greater));
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::And,
                Expr::Equiv(vec![EquivAttr {
                    target: None,
                    attr: "company".into(),
                }]),
                Expr::Bool(true),
            ),
            Expr::bin(
                BinOp::Cmp(CmpOp::Gt),
                Expr::attr("S", "price"),
                Expr::next_attr("S", "price"),
            ),
        );
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        assert!(cs[2].uses_next());
        assert_eq!(cs[2].plain_targets(), vec!["S"]);
        assert_eq!(cs[2].next_targets(), vec!["S"]);
    }

    #[test]
    fn windows_per_event() {
        assert_eq!(WindowSpec::new(10, 3).windows_per_event(), 4);
        assert_eq!(WindowSpec::new(10, 10).windows_per_event(), 1);
        assert_eq!(WindowSpec::new(10, 5).windows_per_event(), 2);
    }

    #[test]
    fn query_builder() {
        let q = QuerySpec::count_star(Pattern::ty("A").plus(), 100)
            .with_window(600, 10)
            .with_group_by(&["sector"])
            .with_where(Expr::bin(
                BinOp::Cmp(CmpOp::Gt),
                Expr::attr("A", "x"),
                Expr::Int(5),
            ));
        assert_eq!(q.window, WindowSpec::new(600, 10));
        assert_eq!(q.group_by, vec!["sector"]);
        assert!(q.where_expr.is_some());
    }
}
