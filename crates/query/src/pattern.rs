//! Pattern normalization: validation (paper §2 well-formedness rules),
//! simplification, desugaring of `*` / `?` (§9), and unrolling for
//! minimal-trend-length constraints (§9).

use crate::ast::Pattern;
use crate::error::QueryError;

/// Simplify a pattern using the equivalences of paper §2:
///
/// * `NOT (P+) ≡ NOT P` and `(NOT P)+ ≡ NOT P`
/// * `(P+)+ ≡ P+`
///
/// plus flattening of nested/singleton sequences.
pub fn simplify(p: Pattern) -> Pattern {
    match p {
        Pattern::Type { .. } => p,
        Pattern::Plus(inner) => match simplify(*inner) {
            // (P+)+ = P+
            Pattern::Plus(q) => Pattern::Plus(q),
            // (NOT P)+ = NOT P
            Pattern::Not(q) => Pattern::Not(q),
            q => Pattern::Plus(Box::new(q)),
        },
        Pattern::Star(inner) => match simplify(*inner) {
            Pattern::Star(q) | Pattern::Plus(q) => Pattern::Star(q),
            q => Pattern::Star(Box::new(q)),
        },
        Pattern::Optional(inner) => Pattern::Optional(Box::new(simplify(*inner))),
        Pattern::Not(inner) => match simplify(*inner) {
            // NOT (P+) = NOT P
            Pattern::Plus(q) => Pattern::Not(q),
            Pattern::Not(q) => *q, // double negation: treat as positive
            q => Pattern::Not(Box::new(q)),
        },
        Pattern::Seq(parts) => {
            let mut out: Vec<Pattern> = Vec::with_capacity(parts.len());
            for part in parts {
                match simplify(part) {
                    // Flatten nested sequences: SEQ(SEQ(a,b),c) = SEQ(a,b,c).
                    Pattern::Seq(inner) => out.extend(inner),
                    q => out.push(q),
                }
            }
            if out.len() == 1 {
                out.pop().unwrap()
            } else {
                Pattern::Seq(out)
            }
        }
        Pattern::Or(a, b) => Pattern::Or(Box::new(simplify(*a)), Box::new(simplify(*b))),
        Pattern::And(a, b) => Pattern::And(Box::new(simplify(*a)), Box::new(simplify(*b))),
    }
}

/// Validate the well-formedness rules of paper §2 on a simplified pattern:
///
/// * negation only inside a sequence, applied to a sequence or event type;
/// * negation is not the outermost operator;
/// * `OR` / `AND` only at the top level with positive operands (§9 count
///   composition handles them; see `greta-core::compose`);
/// * the pattern matches no empty trend (Lemma 1).
pub fn validate(p: &Pattern) -> Result<(), QueryError> {
    match p {
        Pattern::Not(_) => Err(QueryError::InvalidPattern(
            "negation may not be the outermost operator (paper §2)".into(),
        )),
        Pattern::Or(a, b) | Pattern::And(a, b) => {
            if !a.is_positive() || !b.is_positive() {
                return Err(QueryError::Unsupported(
                    "OR/AND operands must be positive patterns (§9)".into(),
                ));
            }
            validate_inner(a)?;
            validate_inner(b)
        }
        other => validate_inner(other),
    }
}

fn validate_inner(p: &Pattern) -> Result<(), QueryError> {
    match p {
        Pattern::Type { .. } => Ok(()),
        Pattern::Plus(inner) | Pattern::Star(inner) | Pattern::Optional(inner) => {
            if matches!(**inner, Pattern::Not(_)) {
                return Err(QueryError::InvalidPattern(
                    "Kleene/optional over negation is not meaningful (paper §2)".into(),
                ));
            }
            validate_inner(inner)
        }
        Pattern::Seq(parts) => {
            if parts.len() < 2 {
                return Err(QueryError::InvalidPattern(
                    "SEQ needs at least two sub-patterns".into(),
                ));
            }
            if parts.iter().all(|q| matches!(q, Pattern::Not(_))) {
                return Err(QueryError::InvalidPattern(
                    "a sequence must contain a positive sub-pattern (paper §2)".into(),
                ));
            }
            for part in parts {
                match part {
                    Pattern::Not(inner) => match &**inner {
                        Pattern::Type { .. } | Pattern::Seq(_) => validate_inner(inner)?,
                        other => {
                            return Err(QueryError::InvalidPattern(format!(
                                "negation must be applied to an event sequence or type, found `{other}` (paper §2)"
                            )))
                        }
                    },
                    other => validate_inner(other)?,
                }
            }
            Ok(())
        }
        Pattern::Not(inner) => {
            // A NOT reached here is not directly inside a SEQ.
            Err(QueryError::InvalidPattern(format!(
                "negation must appear within an event sequence, found bare `NOT {inner}` (paper §2)"
            )))
        }
        Pattern::Or(_, _) | Pattern::And(_, _) => Err(QueryError::Unsupported(
            "nested OR/AND inside patterns is out of scope; use top-level composition (§9)".into(),
        )),
    }
}

/// Desugar `*` and `?` into **disjoint** star-free alternatives (paper §9:
/// `SEQ(Pi*, Pj) = SEQ(Pi+, Pj) ∨ Pj`, `SEQ(Pi?, Pj) = SEQ(Pi, Pj) ∨ Pj`).
///
/// The returned alternatives have pairwise-disjoint trend sets (each is
/// distinguished by whether the starred/optional sub-pattern occurs), so
/// aggregates combine by simple addition / min / max across alternatives.
/// An alternative that would match the empty trend is dropped (Lemma 1:
/// no positive pattern matches the empty string).
pub fn desugar(p: &Pattern) -> Result<Vec<Pattern>, QueryError> {
    let alts = expand(p)?;
    let alts: Vec<Pattern> = alts.into_iter().flatten().map(simplify).collect();
    if alts.is_empty() {
        return Err(QueryError::InvalidPattern(
            "pattern matches only the empty trend".into(),
        ));
    }
    Ok(alts)
}

/// Each alternative is `Some(pattern)` or `None` = the empty trend.
fn expand(p: &Pattern) -> Result<Vec<Option<Pattern>>, QueryError> {
    match p {
        Pattern::Type { .. } => Ok(vec![Some(p.clone())]),
        Pattern::Plus(inner) => {
            let non_empty: Vec<Pattern> = expand(inner)?.into_iter().flatten().collect();
            if non_empty.len() > 1 {
                // (A | B)+ is not a disjoint union of plus-patterns.
                return Err(QueryError::Unsupported(
                    "Kleene plus over an optional/star sub-pattern is out of scope".into(),
                ));
            }
            Ok(non_empty
                .into_iter()
                .map(|q| Some(Pattern::Plus(Box::new(q))))
                .collect())
        }
        Pattern::Star(inner) => {
            let mut out = expand(&Pattern::Plus(inner.clone()))?;
            out.push(None); // zero occurrences
            Ok(out)
        }
        Pattern::Optional(inner) => {
            let mut out = expand(inner)?;
            out.push(None);
            Ok(out)
        }
        Pattern::Not(inner) => {
            let inner_alts = expand(inner)?;
            if inner_alts.len() != 1 || inner_alts[0].is_none() {
                return Err(QueryError::Unsupported(
                    "star/optional inside negation is out of scope".into(),
                ));
            }
            Ok(vec![Some(Pattern::Not(Box::new(
                inner_alts.into_iter().next().unwrap().unwrap(),
            )))])
        }
        Pattern::Seq(parts) => {
            // Cartesian product of element alternatives; None elements drop
            // out of the sequence.
            let mut acc: Vec<Vec<Pattern>> = vec![Vec::new()];
            for part in parts {
                let part_alts = expand(part)?;
                let mut next = Vec::with_capacity(acc.len() * part_alts.len());
                for prefix in &acc {
                    for alt in &part_alts {
                        let mut seq = prefix.clone();
                        if let Some(q) = alt {
                            seq.push(q.clone());
                        }
                        next.push(seq);
                    }
                }
                acc = next;
            }
            Ok(acc
                .into_iter()
                .map(|seq| match seq.len() {
                    0 => None,
                    1 => Some(seq.into_iter().next().unwrap()),
                    _ => Some(Pattern::Seq(seq)),
                })
                .collect())
        }
        Pattern::Or(a, b) => {
            let mut out = expand(a)?;
            out.extend(expand(b)?);
            Ok(out)
        }
        Pattern::And(_, _) => Err(QueryError::Unsupported(
            "AND requires count composition (§9); use greta-core::compose".into(),
        )),
    }
}

/// Unroll a Kleene plus to enforce a minimal trend length (paper §9:
/// `A+` with minimal length 3 becomes `SEQ(A, A, A+)`). Each unrolled copy
/// gets a distinct alias (`binding#i`) so the multiple-occurrence machinery
/// of §9 applies.
pub fn unroll_plus(p: &Pattern, min_len: usize) -> Result<Pattern, QueryError> {
    let Pattern::Plus(inner) = p else {
        return Err(QueryError::InvalidPattern(
            "minimal-length unrolling applies to Kleene plus patterns".into(),
        ));
    };
    if min_len <= 1 {
        return Ok(p.clone());
    }
    let mut parts = Vec::with_capacity(min_len);
    for i in 0..min_len - 1 {
        parts.push(rename_bindings(inner, i));
    }
    parts.push(Pattern::Plus(Box::new(rename_bindings(inner, min_len - 1))));
    Ok(Pattern::Seq(parts))
}

fn rename_bindings(p: &Pattern, copy: usize) -> Pattern {
    match p {
        Pattern::Type { name, alias } => {
            let base = alias.clone().unwrap_or_else(|| name.clone());
            Pattern::Type {
                name: name.clone(),
                alias: Some(format!("{base}#{copy}")),
            }
        }
        Pattern::Plus(q) => Pattern::Plus(Box::new(rename_bindings(q, copy))),
        Pattern::Star(q) => Pattern::Star(Box::new(rename_bindings(q, copy))),
        Pattern::Optional(q) => Pattern::Optional(Box::new(rename_bindings(q, copy))),
        Pattern::Not(q) => Pattern::Not(Box::new(rename_bindings(q, copy))),
        Pattern::Seq(ps) => Pattern::Seq(ps.iter().map(|q| rename_bindings(q, copy)).collect()),
        Pattern::Or(a, b) => Pattern::Or(
            Box::new(rename_bindings(a, copy)),
            Box::new(rename_bindings(b, copy)),
        ),
        Pattern::And(a, b) => Pattern::And(
            Box::new(rename_bindings(a, copy)),
            Box::new(rename_bindings(b, copy)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;

    #[test]
    fn simplify_kleene_negation_equivalences() {
        // NOT (P+) = NOT P
        let p = simplify(parse_pattern("SEQ(A, NOT (C+), B)").unwrap());
        assert_eq!(p.to_string(), "SEQ(A, NOT C, B)");
        // (P+)+ = P+
        let p = simplify(parse_pattern("(A+)+").unwrap());
        assert_eq!(p, Pattern::ty("A").plus());
        // singleton/nested SEQ flattening
        let p = simplify(parse_pattern("SEQ(SEQ(A, B), C)").unwrap());
        assert_eq!(
            p,
            Pattern::seq(vec![Pattern::ty("A"), Pattern::ty("B"), Pattern::ty("C")])
        );
    }

    #[test]
    fn validate_accepts_paper_queries() {
        for s in [
            "S+",
            "SEQ(S, M+, E)",
            "SEQ(NOT A, P+)",
            "(SEQ(A+, B))+",
            "(SEQ(A+, NOT SEQ(C, NOT E, D), B))+",
            "SEQ(A+, NOT E)",
        ] {
            let p = simplify(parse_pattern(s).unwrap());
            validate(&p).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_outer_negation() {
        let p = simplify(parse_pattern("NOT A").unwrap());
        assert!(matches!(validate(&p), Err(QueryError::InvalidPattern(_))));
    }

    #[test]
    fn validate_rejects_all_negative_seq() {
        let p = simplify(parse_pattern("SEQ(NOT A, NOT B)").unwrap());
        assert!(validate(&p).is_err());
    }

    #[test]
    fn validate_rejects_negation_outside_seq() {
        // NOT nested under Plus is simplified away; NOT under Plus within Seq:
        let p = Pattern::seq(vec![Pattern::ty("A"), Pattern::ty("B").not().plus()]);
        let p = simplify(p); // (NOT B)+ = NOT B, so this becomes valid
        validate(&p).unwrap();
        // But NOT applied to a Kleene sub-pattern that is not type/seq:
        let p = Pattern::seq(vec![
            Pattern::ty("A"),
            Pattern::Not(Box::new(Pattern::ty("B").plus())),
        ]);
        // simplify rewrites NOT(B+) to NOT B → valid per §2.
        validate(&simplify(p)).unwrap();
    }

    #[test]
    fn desugar_star_in_seq() {
        let alts = desugar(&parse_pattern("SEQ(A*, B)").unwrap()).unwrap();
        let strs: Vec<String> = alts.iter().map(|p| p.to_string()).collect();
        assert_eq!(strs, vec!["SEQ((A)+, B)", "B"]);
    }

    #[test]
    fn desugar_optional() {
        let alts = desugar(&parse_pattern("SEQ(A?, B, C?)").unwrap()).unwrap();
        let strs: Vec<String> = alts.iter().map(|p| p.to_string()).collect();
        assert_eq!(strs, vec!["SEQ(A, B, C)", "SEQ(A, B)", "SEQ(B, C)", "B"]);
    }

    #[test]
    fn desugar_rejects_pure_empty() {
        assert!(desugar(&parse_pattern("A?").unwrap()).is_ok()); // [A]
        let alts = desugar(&parse_pattern("A?").unwrap()).unwrap();
        assert_eq!(alts.len(), 1);
        assert!(desugar(&Pattern::Seq(vec![])).is_err());
    }

    #[test]
    fn desugar_or_produces_alternatives() {
        let alts = desugar(&parse_pattern("A+ OR B").unwrap()).unwrap();
        assert_eq!(alts.len(), 2);
    }

    #[test]
    fn desugar_passes_negation_through() {
        let alts = desugar(&parse_pattern("SEQ(A+, NOT C, B?)").unwrap()).unwrap();
        let strs: Vec<String> = alts.iter().map(|p| p.to_string()).collect();
        assert_eq!(strs, vec!["SEQ((A)+, NOT C, B)", "SEQ((A)+, NOT C)"]);
    }

    #[test]
    fn unroll_to_min_length() {
        let p = parse_pattern("A+").unwrap();
        let u = unroll_plus(&p, 3).unwrap();
        assert_eq!(u.to_string(), "SEQ(A A#0, A A#1, (A A#2)+)");
        // min_len 1 is a no-op
        assert_eq!(unroll_plus(&p, 1).unwrap(), p);
        // not a plus pattern
        assert!(unroll_plus(&Pattern::ty("A"), 2).is_err());
    }
}
