//! Recursive-descent parser for the query grammar of paper Fig. 2.
//!
//! ```text
//! q := RETURN ⟨A | attr⟩,…  PATTERN ⟨P⟩  (WHERE ⟨θ⟩)?  (GROUP-BY attrs)?
//!      WITHIN duration SLIDE duration
//! P := Type alias? | ⟨P⟩+ | ⟨P⟩* | ⟨P⟩? | NOT ⟨P⟩ | SEQ(⟨P⟩, …) | (P OR P) | (P AND P)
//! θ := const | E.attr | NEXT(E).attr | [equiv,…] | ⟨θ⟩ ⟨O⟩ ⟨θ⟩
//! ```
//!
//! Durations accept time units (`seconds`, `minutes`, `hours`); one tick is
//! one second, matching the paper's data sets.

use crate::ast::*;
use crate::error::QueryError;
use crate::lexer::{lex, Token, TokenKind};

/// Parse a full event trend aggregation query.
pub fn parse_query(input: &str) -> Result<QuerySpec, QueryError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, i: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a standalone pattern (testing / programmatic use).
pub fn parse_pattern(input: &str) -> Result<Pattern, QueryError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, i: 0 };
    let pat = p.pattern()?;
    p.expect_eof()?;
    Ok(pat)
}

/// Parse a standalone predicate expression.
pub fn parse_expr(input: &str) -> Result<Expr, QueryError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, i: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.i].kind
    }

    fn pos(&self) -> usize {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.i].kind.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, QueryError> {
        Err(QueryError::Parse {
            pos: self.pos(),
            msg: msg.into(),
        })
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), TokenKind::Sym(t) if *t == s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &'static str) -> Result<(), QueryError> {
        match self.peek() {
            TokenKind::Sym(t) if *t == s => {
                self.i += 1;
                Ok(())
            }
            other => self.err(format!("expected `{s}`, found {other:?}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if *k == kw) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<(), QueryError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            let found = self.peek().clone();
            self.err(format!("expected keyword {kw}, found {found:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.i += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), QueryError> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            let found = self.peek().clone();
            self.err(format!("trailing input: {found:?}"))
        }
    }

    // ---- query --------------------------------------------------------

    fn query(&mut self) -> Result<QuerySpec, QueryError> {
        self.expect_kw("RETURN")?;
        let mut return_attrs = Vec::new();
        let mut aggregates = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Keyword(k @ ("COUNT" | "MIN" | "MAX" | "SUM" | "AVG")) => {
                    self.i += 1;
                    aggregates.push(AggSpec::new(self.agg_func(k)?));
                }
                TokenKind::Ident(name) => {
                    self.i += 1;
                    return_attrs.push(name);
                }
                other => return self.err(format!("expected RETURN item, found {other:?}")),
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("PATTERN")?;
        let pattern = self.pattern()?;
        let where_expr = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP-BY") {
            loop {
                group_by.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        self.expect_kw("WITHIN")?;
        let within = self.duration()?;
        self.expect_kw("SLIDE")?;
        let slide = self.duration()?;
        Ok(QuerySpec {
            return_attrs,
            aggregates,
            pattern,
            where_expr,
            group_by,
            window: WindowSpec::new(within, slide),
        })
    }

    fn agg_func(&mut self, kw: &str) -> Result<AggFunc, QueryError> {
        self.expect_sym("(")?;
        let func = if kw == "COUNT" {
            if self.eat_sym("*") {
                AggFunc::CountStar
            } else {
                AggFunc::Count(self.ident()?)
            }
        } else {
            let target = self.ident()?;
            self.expect_sym(".")?;
            let attr = self.ident()?;
            match kw {
                "MIN" => AggFunc::Min(target, attr),
                "MAX" => AggFunc::Max(target, attr),
                "SUM" => AggFunc::Sum(target, attr),
                "AVG" => AggFunc::Avg(target, attr),
                _ => unreachable!(),
            }
        };
        self.expect_sym(")")?;
        Ok(func)
    }

    fn duration(&mut self) -> Result<u64, QueryError> {
        let n = match self.bump() {
            TokenKind::Int(n) if n >= 0 => n as u64,
            other => return self.err(format!("expected duration, found {other:?}")),
        };
        // Optional unit identifier; 1 tick = 1 second.
        let mult = match self.peek().clone() {
            TokenKind::Ident(u) => {
                let m = match u.to_ascii_lowercase().as_str() {
                    "tick" | "ticks" | "s" | "sec" | "secs" | "second" | "seconds" => Some(1),
                    "m" | "min" | "mins" | "minute" | "minutes" => Some(60),
                    "h" | "hour" | "hours" => Some(3600),
                    _ => None,
                };
                if let Some(m) = m {
                    self.i += 1;
                    m
                } else {
                    1
                }
            }
            _ => 1,
        };
        Ok(n * mult)
    }

    // ---- patterns -----------------------------------------------------

    fn pattern(&mut self) -> Result<Pattern, QueryError> {
        // OR (lowest precedence), then AND, then postfix quantifiers.
        let mut lhs = self.pattern_and()?;
        while self.eat_kw("OR") {
            let rhs = self.pattern_and()?;
            lhs = Pattern::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pattern_and(&mut self) -> Result<Pattern, QueryError> {
        let mut lhs = self.pattern_postfix()?;
        while self.eat_kw("AND") {
            let rhs = self.pattern_postfix()?;
            lhs = Pattern::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pattern_postfix(&mut self) -> Result<Pattern, QueryError> {
        let mut p = self.pattern_primary()?;
        loop {
            if self.eat_sym("+") {
                p = p.plus();
            } else if self.eat_sym("*") {
                p = p.star();
            } else if self.eat_sym("?") {
                p = p.optional();
            } else {
                break;
            }
        }
        Ok(p)
    }

    fn pattern_primary(&mut self) -> Result<Pattern, QueryError> {
        match self.peek().clone() {
            TokenKind::Keyword("SEQ") => {
                self.i += 1;
                self.expect_sym("(")?;
                let mut parts = vec![self.pattern()?];
                while self.eat_sym(",") {
                    parts.push(self.pattern()?);
                }
                self.expect_sym(")")?;
                Ok(Pattern::Seq(parts))
            }
            TokenKind::Keyword("NOT") => {
                self.i += 1;
                let inner = self.pattern_postfix()?;
                Ok(inner.not())
            }
            TokenKind::Sym("(") => {
                self.i += 1;
                let inner = self.pattern()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.i += 1;
                // Optional alias: another bare identifier right after.
                if let TokenKind::Ident(alias) = self.peek().clone() {
                    self.i += 1;
                    Ok(Pattern::Type {
                        name,
                        alias: Some(alias),
                    })
                } else {
                    Ok(Pattern::Type { name, alias: None })
                }
            }
            other => self.err(format!("expected pattern, found {other:?}")),
        }
    }

    // ---- predicate expressions ----------------------------------------

    fn expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.expr_and()?;
        while self.eat_kw("OR") {
            let rhs = self.expr_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.expr_cmp()?;
        while self.eat_kw("AND") {
            let rhs = self.expr_cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn expr_cmp(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            TokenKind::Sym("=") => Some(CmpOp::Eq),
            TokenKind::Sym("!=") => Some(CmpOp::Ne),
            TokenKind::Sym("<") => Some(CmpOp::Lt),
            TokenKind::Sym("<=") => Some(CmpOp::Le),
            TokenKind::Sym(">") => Some(CmpOp::Gt),
            TokenKind::Sym(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.i += 1;
                let rhs = self.expr_add()?;
                Ok(Expr::bin(BinOp::Cmp(op), lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn expr_add(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym("+") => BinOp::Add,
                TokenKind::Sym("-") => BinOp::Sub,
                _ => break,
            };
            self.i += 1;
            let rhs = self.expr_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn expr_mul(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.expr_primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Sym("*") => BinOp::Mul,
                TokenKind::Sym("/") => BinOp::Div,
                TokenKind::Sym("%") => BinOp::Mod,
                _ => break,
            };
            self.i += 1;
            let rhs = self.expr_primary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn expr_primary(&mut self) -> Result<Expr, QueryError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.i += 1;
                Ok(Expr::Int(n))
            }
            TokenKind::Float(f) => {
                self.i += 1;
                Ok(Expr::Float(f))
            }
            TokenKind::Str(s) => {
                self.i += 1;
                Ok(Expr::Str(s))
            }
            TokenKind::Keyword("TRUE") => {
                self.i += 1;
                Ok(Expr::Bool(true))
            }
            TokenKind::Keyword("FALSE") => {
                self.i += 1;
                Ok(Expr::Bool(false))
            }
            TokenKind::Keyword("NEXT") => {
                self.i += 1;
                self.expect_sym("(")?;
                let target = self.ident()?;
                self.expect_sym(")")?;
                self.expect_sym(".")?;
                let attr = self.ident()?;
                Ok(Expr::NextAttr { target, attr })
            }
            TokenKind::Sym("[") => {
                self.i += 1;
                let mut attrs = Vec::new();
                loop {
                    let first = self.ident()?;
                    if self.eat_sym(".") {
                        let attr = self.ident()?;
                        attrs.push(EquivAttr {
                            target: Some(first),
                            attr,
                        });
                    } else {
                        attrs.push(EquivAttr {
                            target: None,
                            attr: first,
                        });
                    }
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym("]")?;
                Ok(Expr::Equiv(attrs))
            }
            TokenKind::Sym("(") => {
                self.i += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Ident(target) => {
                self.i += 1;
                self.expect_sym(".")?;
                let attr = self.ident()?;
                Ok(Expr::Attr { target, attr })
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q = parse_query(
            "RETURN sector, COUNT(*) PATTERN Stock S+ \
             WHERE [company, sector] AND S.price > NEXT(S).price \
             GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds",
        )
        .unwrap();
        assert_eq!(q.return_attrs, vec!["sector"]);
        assert_eq!(q.aggregates[0].func, AggFunc::CountStar);
        assert_eq!(q.pattern, Pattern::ty_as("Stock", "S").plus());
        assert_eq!(q.group_by, vec!["sector"]);
        assert_eq!(q.window, WindowSpec::new(600, 10));
        let conj = q.where_expr.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 2);
    }

    #[test]
    fn parses_q2() {
        let q = parse_query(
            "RETURN mapper, SUM(M.cpu) \
             PATTERN SEQ(Start S, Measurement M+, End E) \
             WHERE [job, mapper] AND M.load < NEXT(M).load \
             GROUP-BY mapper WITHIN 1 minute SLIDE 30 seconds",
        )
        .unwrap();
        assert_eq!(q.aggregates[0].func, AggFunc::Sum("M".into(), "cpu".into()));
        assert_eq!(
            q.pattern,
            Pattern::seq(vec![
                Pattern::ty_as("Start", "S"),
                Pattern::ty_as("Measurement", "M").plus(),
                Pattern::ty_as("End", "E"),
            ])
        );
        assert_eq!(q.window, WindowSpec::new(60, 30));
    }

    #[test]
    fn parses_q3_with_negation() {
        let q = parse_query(
            "RETURN segment, COUNT(*), AVG(P.speed) \
             PATTERN SEQ(NOT Accident A, Position P+) \
             WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
             GROUP-BY segment WITHIN 5 minutes SLIDE 1 minute",
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(
            q.pattern,
            Pattern::seq(vec![
                Pattern::ty_as("Accident", "A").not(),
                Pattern::ty_as("Position", "P").plus(),
            ])
        );
        match &q.where_expr.as_ref().unwrap().conjuncts()[0] {
            Expr::Equiv(attrs) => {
                assert_eq!(attrs[0].target.as_deref(), Some("P"));
                assert_eq!(attrs[0].attr, "vehicle");
                assert_eq!(attrs[1].target, None);
            }
            other => panic!("expected equivalence, got {other:?}"),
        }
    }

    #[test]
    fn nested_kleene_pattern() {
        let p = parse_pattern("(SEQ(A+, B))+").unwrap();
        assert_eq!(
            p,
            Pattern::seq(vec![Pattern::ty("A").plus(), Pattern::ty("B")]).plus()
        );
    }

    #[test]
    fn nested_negation_pattern() {
        let p = parse_pattern("(SEQ(A+, NOT SEQ(C, NOT E, D), B))+").unwrap();
        let expect = Pattern::seq(vec![
            Pattern::ty("A").plus(),
            Pattern::seq(vec![
                Pattern::ty("C"),
                Pattern::ty("E").not(),
                Pattern::ty("D"),
            ])
            .not(),
            Pattern::ty("B"),
        ])
        .plus();
        assert_eq!(p, expect);
    }

    #[test]
    fn star_optional_or_and() {
        assert_eq!(
            parse_pattern("SEQ(A*, B)").unwrap(),
            Pattern::seq(vec![Pattern::ty("A").star(), Pattern::ty("B")])
        );
        assert_eq!(
            parse_pattern("A? OR B").unwrap(),
            Pattern::Or(
                Box::new(Pattern::ty("A").optional()),
                Box::new(Pattern::ty("B"))
            )
        );
        assert_eq!(
            parse_pattern("A AND B").unwrap(),
            Pattern::And(Box::new(Pattern::ty("A")), Box::new(Pattern::ty("B")))
        );
    }

    #[test]
    fn expression_precedence() {
        // a.x * 2 + 1 < NEXT(a).y  parses as ((a.x*2)+1) < NEXT(a).y
        let e = parse_expr("a.x * 2 + 1 < NEXT(a).y").unwrap();
        match e {
            Expr::Bin {
                op: BinOp::Cmp(CmpOp::Lt),
                lhs,
                ..
            } => match *lhs {
                Expr::Bin { op: BinOp::Add, .. } => {}
                other => panic!("expected Add on lhs, got {other:?}"),
            },
            other => panic!("expected Cmp, got {other:?}"),
        }
    }

    #[test]
    fn duration_units() {
        let q = parse_query("RETURN COUNT(*) PATTERN A WITHIN 2 hours SLIDE 90").unwrap();
        assert_eq!(q.window, WindowSpec::new(7200, 90));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_query("RETURN COUNT(*)").is_err());
        assert!(parse_query("PATTERN A WITHIN 1 SLIDE 1").is_err());
        assert!(parse_pattern("SEQ(A,)").is_err());
        assert!(parse_expr("a.x <").is_err());
        assert!(parse_query("RETURN COUNT(*) PATTERN A WITHIN 1 SLIDE 1 trailing").is_err());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Random patterns over types A–D with optional aliases.
        fn arb_pattern() -> impl Strategy<Value = Pattern> {
            let leaf = (0u8..4, proptest::bool::ANY).prop_map(|(i, alias)| {
                let name = ["Alpha", "Beta", "Gamma", "Delta"][i as usize];
                if alias {
                    Pattern::ty_as(name, &format!("X{i}"))
                } else {
                    Pattern::ty(name)
                }
            });
            leaf.prop_recursive(3, 16, 3, |inner| {
                prop_oneof![
                    inner.clone().prop_map(Pattern::plus),
                    inner.clone().prop_map(Pattern::star),
                    inner.clone().prop_map(Pattern::optional),
                    proptest::collection::vec(inner.clone(), 2..4).prop_map(Pattern::seq),
                    inner.clone().prop_map(Pattern::not),
                    (inner.clone(), inner).prop_map(|(a, b)| Pattern::Or(Box::new(a), Box::new(b))),
                ]
            })
        }

        proptest! {
            /// `parse(display(p)) == p` for every constructible pattern.
            #[test]
            fn pattern_display_round_trips(p in arb_pattern()) {
                let text = p.to_string();
                let reparsed = parse_pattern(&text)
                    .unwrap_or_else(|e| panic!("`{text}`: {e}"));
                prop_assert_eq!(reparsed, p);
            }
        }
    }

    #[test]
    fn count_type_aggregate() {
        let q = parse_query("RETURN COUNT(A) PATTERN A+ WITHIN 10 SLIDE 10").unwrap();
        assert_eq!(q.aggregates[0].func, AggFunc::Count("A".into()));
    }
}
