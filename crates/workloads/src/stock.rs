//! NYSE-like stock transaction generator (paper §10.1, "Stock Real Data
//! Set": 225k transaction records of 10 companies, replicated 10×).
//!
//! Each event carries volume, price, type (sell/buy), company, sector and a
//! transaction id. Prices follow per-company random walks; the step
//! distribution controls the selectivity of the `S.price ⟨op⟩
//! NEXT(S).price` edge predicates of query Q1 and its variations.

use crate::{rng::seeded, Timestamps};
use greta_types::{Event, SchemaRegistry, TypeError, TypeId, Value};
use rand::Rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Number of companies (paper: 10).
    pub companies: usize,
    /// Number of sectors (companies are assigned round-robin).
    pub sectors: usize,
    /// Random-walk step: price moves by a uniform step in
    /// `[-down_step, up_step]`; a larger `down_step` makes down-trends (and
    /// the Q1 predicate) more selective or less, as configured.
    pub down_step: f64,
    /// Upward step bound.
    pub up_step: f64,
    /// Initial price per company.
    pub base_price: f64,
    /// Probability, per transaction, of emitting a `Halt` event for the
    /// same company (the negative sub-pattern workload of Fig. 15;
    /// 0 disables halts).
    pub halt_rate: f64,
    /// Time-stamp policy.
    pub timestamps: Timestamps,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            events: 10_000,
            companies: 10,
            sectors: 3,
            down_step: 1.0,
            up_step: 1.0,
            base_price: 100.0,
            halt_rate: 0.0,
            timestamps: Timestamps::PerEvent,
            seed: 0x57_0c_c0_de,
        }
    }
}

/// The stock stream generator.
///
/// ```
/// use greta_types::SchemaRegistry;
/// use greta_workloads::{StockConfig, StockGen};
/// let mut reg = SchemaRegistry::new();
/// let gen = StockGen::new(StockConfig { events: 100, ..Default::default() }, &mut reg).unwrap();
/// let stream = gen.generate();
/// assert_eq!(stream.len(), 100);
/// assert!(greta_types::stream::check_in_order(&stream));
/// ```
#[derive(Debug, Clone)]
pub struct StockGen {
    /// Configuration used.
    pub config: StockConfig,
    /// Registered `Stock` type id.
    pub stock: TypeId,
    /// Registered `Halt` type id.
    pub halt: TypeId,
}

impl StockGen {
    /// Register the `Stock` schema and build the generator.
    pub fn new(config: StockConfig, reg: &mut SchemaRegistry) -> Result<StockGen, TypeError> {
        let stock = reg.register_type(
            "Stock",
            &["price", "volume", "company", "sector", "kind", "txn"],
        )?;
        let halt = reg.register_type("Halt", &["company", "sector"])?;
        Ok(StockGen {
            config,
            stock,
            halt,
        })
    }

    /// Generate the stream (in-order, deterministic per seed).
    pub fn generate(&self) -> Vec<Event> {
        let c = &self.config;
        let mut rng = seeded(c.seed);
        let mut prices: Vec<f64> = vec![c.base_price; c.companies.max(1)];
        let mut out = Vec::with_capacity(c.events);
        let mut i = 0u64;
        for txn in 0..c.events {
            let company = rng.gen_range(0..c.companies.max(1));
            let step = rng.gen_range(-c.down_step..=c.up_step);
            prices[company] = (prices[company] + step).max(1.0);
            let sector = company % c.sectors.max(1);
            out.push(Event::new_unchecked(
                self.stock,
                c.timestamps.time_of(i),
                vec![
                    Value::Float(prices[company]),
                    Value::Int(rng.gen_range(1..=1000)),
                    Value::Int(company as i64),
                    Value::Int(sector as i64),
                    Value::Int(if rng.gen_bool(0.5) { 1 } else { 0 }),
                    Value::Int(txn as i64),
                ],
            ));
            i += 1;
            if c.halt_rate > 0.0 && rng.gen_bool(c.halt_rate.clamp(0.0, 1.0)) {
                out.push(Event::new_unchecked(
                    self.halt,
                    c.timestamps.time_of(i),
                    vec![Value::Int(company as i64), Value::Int(sector as i64)],
                ));
                i += 1;
            }
        }
        out
    }

    /// Replicate a stream `n` times back to back (the paper replicates the
    /// 225k-record NYSE set 10×), shifting time stamps so order holds.
    pub fn replicate(events: &[Event], n: usize) -> Vec<Event> {
        let Some(last) = events.last() else {
            return Vec::new();
        };
        let span = last.time.ticks() + 1;
        let mut out = Vec::with_capacity(events.len() * n);
        for rep in 0..n as u64 {
            for e in events {
                let mut e = e.clone();
                e.time = greta_types::Time(e.time.ticks() + rep * span);
                out.push(e);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::stream::check_in_order;

    #[test]
    fn generates_in_order_deterministic() {
        let mut reg = SchemaRegistry::new();
        let g = StockGen::new(StockConfig::default(), &mut reg).unwrap();
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a.len(), 10_000);
        assert_eq!(a, b);
        assert!(check_in_order(&a));
    }

    #[test]
    fn attribute_ranges() {
        let mut reg = SchemaRegistry::new();
        let g = StockGen::new(
            StockConfig {
                events: 2000,
                ..Default::default()
            },
            &mut reg,
        )
        .unwrap();
        let schema = reg.schema(g.stock).clone();
        let company = schema.attr("company").unwrap();
        let sector = schema.attr("sector").unwrap();
        let price = schema.attr("price").unwrap();
        for e in g.generate() {
            let c = e.attr(company).as_i64().unwrap();
            assert!((0..10).contains(&c));
            let s = e.attr(sector).as_i64().unwrap();
            assert_eq!(s, c % 3);
            assert!(e.attr(price).as_f64() >= 1.0);
        }
    }

    #[test]
    fn replication_preserves_order() {
        let mut reg = SchemaRegistry::new();
        let g = StockGen::new(
            StockConfig {
                events: 100,
                ..Default::default()
            },
            &mut reg,
        )
        .unwrap();
        let base = g.generate();
        let rep = StockGen::replicate(&base, 10);
        assert_eq!(rep.len(), 1000);
        assert!(check_in_order(&rep));
        assert!(StockGen::replicate(&[], 5).is_empty());
    }

    #[test]
    fn down_step_bias_controls_direction() {
        let mut reg = SchemaRegistry::new();
        let g = StockGen::new(
            StockConfig {
                events: 5000,
                companies: 1,
                down_step: 2.0,
                up_step: 0.5,
                // High base so the walk never hits the price floor at 1.0
                // (flat steps at the floor are neither up nor down).
                base_price: 10_000.0,
                ..Default::default()
            },
            &mut reg,
        )
        .unwrap();
        let evs = g.generate();
        let price = reg.schema(g.stock).attr("price").unwrap();
        let downs = evs
            .windows(2)
            .filter(|w| w[0].attr(price).as_f64() > w[1].attr(price).as_f64())
            .count();
        // Heavily down-biased walk: most steps go down (floor at 1.0 makes
        // some steps flat).
        assert!(downs * 2 > evs.len(), "downs={downs}");
    }
}
