//! Stream persistence: export generated workloads and import recorded
//! streams (reproducibility artifacts — the paper's experiments are run on
//! stored data sets; ours can be serialized the same way).
//!
//! Two formats:
//!
//! * **CSV** — one file per run: `type,time,attr1=value,…` with a schema
//!   header line; human-diffable, round-trips every [`Value`] variant.
//! * **JSONL** — one JSON-encoded event per line, with the schema
//!   registry on the first line (floats are rendered with Rust's shortest
//!   round-trip formatter, so values survive a round trip exactly).
//!
//! JSON is encoded and parsed by the tiny [`json`] module below — the
//! build environment is offline, so no serde.

use greta_types::{Event, Schema, SchemaRegistry, Time, TypeError, Value};
use std::io::{BufRead, Write};

/// Errors raised while reading a persisted stream.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based line number.
    Parse {
        /// Line number.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Schema mismatch while resolving a type.
    Type(TypeError),
    /// JSON (de)serialization failure.
    Json(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Type(e) => write!(f, "{e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
impl From<TypeError> for IoError {
    fn from(e: TypeError) -> Self {
        IoError::Type(e)
    }
}

/// Write a stream as CSV. The header block declares each schema as
/// `#schema,TypeName,attr1,attr2,…`; each event line is
/// `TypeName,time,v1,v2,…` with values rendered by kind prefix
/// (`i:`, `f:`, `s:`, `b:`).
pub fn write_csv(
    w: &mut impl Write,
    reg: &SchemaRegistry,
    events: &[Event],
) -> Result<(), IoError> {
    for (_, schema) in reg.iter() {
        write!(w, "#schema,{}", schema.name)?;
        for a in &schema.attributes {
            write!(w, ",{a}")?;
        }
        writeln!(w)?;
    }
    for e in events {
        let schema = reg.schema(e.type_id);
        write!(w, "{},{}", schema.name, e.time.ticks())?;
        for v in e.attrs.iter() {
            match v {
                Value::Int(i) => write!(w, ",i:{i}")?,
                Value::Float(f) => write!(w, ",f:{f}")?,
                Value::Str(s) => write!(w, ",s:{s}")?,
                Value::Bool(b) => write!(w, ",b:{b}")?,
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a CSV stream (see [`write_csv`]). Returns the reconstructed
/// registry and the events in file order.
pub fn read_csv(r: impl BufRead) -> Result<(SchemaRegistry, Vec<Event>), IoError> {
    let mut reg = SchemaRegistry::new();
    let mut events = Vec::new();
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = ln + 1;
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let first = parts.next().unwrap_or_default();
        if first == "#schema" {
            let name = parts.next().ok_or_else(|| IoError::Parse {
                line: lineno,
                msg: "missing schema name".into(),
            })?;
            let attrs: Vec<&str> = parts.collect();
            reg.register(Schema::new(name, &attrs))?;
            continue;
        }
        let tid = reg.type_id(first)?;
        let time: u64 =
            parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| IoError::Parse {
                    line: lineno,
                    msg: "missing/invalid time stamp".into(),
                })?;
        let mut attrs = Vec::new();
        for cell in parts {
            let (kind, raw) = cell.split_at(cell.find(':').ok_or_else(|| IoError::Parse {
                line: lineno,
                msg: format!("value `{cell}` lacks a kind prefix"),
            })?);
            let raw = &raw[1..];
            let v = match kind {
                "i" => Value::Int(raw.parse().map_err(|_| IoError::Parse {
                    line: lineno,
                    msg: format!("bad int `{raw}`"),
                })?),
                "f" => Value::Float(raw.parse().map_err(|_| IoError::Parse {
                    line: lineno,
                    msg: format!("bad float `{raw}`"),
                })?),
                "s" => Value::from(raw),
                "b" => Value::Bool(raw == "true"),
                other => {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: format!("unknown value kind `{other}`"),
                    })
                }
            };
            attrs.push(v);
        }
        events.push(Event::new(&reg, tid, Time(time), attrs)?);
    }
    Ok((reg, events))
}

/// Write a stream as JSONL: line 1 is the schema registry, every following
/// line one event.
pub fn write_jsonl(
    w: &mut impl Write,
    reg: &SchemaRegistry,
    events: &[Event],
) -> Result<(), IoError> {
    writeln!(w, "{}", json::encode_registry(reg))?;
    for e in events {
        writeln!(w, "{}", json::encode_event(e))?;
    }
    Ok(())
}

/// Read a JSONL stream written by [`write_jsonl`].
pub fn read_jsonl(r: impl BufRead) -> Result<(SchemaRegistry, Vec<Event>), IoError> {
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| IoError::Parse {
        line: 1,
        msg: "empty file".into(),
    })??;
    // The registry's name index is not persisted; rebuild it by
    // re-registering every schema.
    let mut reg = SchemaRegistry::new();
    for schema in json::decode_registry(&header).map_err(IoError::Json)? {
        reg.register(schema)?;
    }
    let mut events = Vec::new();
    for (ln, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let e = json::decode_event(&line).map_err(|msg| IoError::Parse { line: ln + 2, msg })?;
        events.push(e);
    }
    Ok((reg, events))
}

/// Minimal JSON encoding/parsing for the two persisted shapes
/// (schema registries and events). Number tokens are kept as raw text
/// until their target type is known, so `i64` attributes never take a
/// lossy trip through `f64`.
pub mod json {
    use greta_types::{Event, Schema, SchemaRegistry, Time, TypeId, Value};
    use std::fmt::Write as _;

    /// `{"schemas":[{"name":…,"attributes":[…]},…]}`
    pub fn encode_registry(reg: &SchemaRegistry) -> String {
        let mut out = String::from("{\"schemas\":[");
        for (i, (_, schema)) in reg.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_str_lit(&mut out, &schema.name);
            out.push_str(",\"attributes\":[");
            for (j, a) in schema.attributes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_str_lit(&mut out, a);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// `{"time":…,"type_id":…,"attrs":[{"Int":…}|{"Float":…}|{"Str":…}|{"Bool":…},…]}`
    pub fn encode_event(e: &Event) -> String {
        let mut out = String::new();
        write!(
            out,
            "{{\"time\":{},\"type_id\":{},\"attrs\":[",
            e.time.ticks(),
            e.type_id.0
        )
        .expect("string write");
        for (i, v) in e.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_value(&mut out, v);
        }
        out.push_str("]}");
        out
    }

    /// Append one [`Value`] in the tagged-object shape used inside event
    /// lines (`{"Int":…}` / `{"Float":…}` / `{"Str":…}` / `{"Bool":…}`).
    /// Public so other wire formats (the network front-end's JSON mode)
    /// render values identically to [`encode_event`].
    pub fn push_value(out: &mut String, v: &Value) {
        match v {
            Value::Int(x) => write!(out, "{{\"Int\":{x}}}").expect("string write"),
            Value::Float(x) => {
                if x.is_finite() {
                    write!(out, "{{\"Float\":{x}}}").expect("string write")
                } else {
                    // JSON has no Inf/NaN literals; null round-trips to NaN.
                    out.push_str("{\"Float\":null}")
                }
            }
            Value::Str(s) => {
                out.push_str("{\"Str\":");
                push_str_lit(out, s);
                out.push('}');
            }
            Value::Bool(b) => write!(out, "{{\"Bool\":{b}}}").expect("string write"),
        }
    }

    /// Decode one tagged value object written by [`push_value`].
    pub fn value_from_json(v: &Json) -> Result<Value, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| "value must be an object".to_string())?;
        let (tag, val) = obj
            .first()
            .ok_or_else(|| "empty value object".to_string())?;
        match (tag.as_str(), val) {
            ("Int", Json::Num(raw)) => raw
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| e.to_string()),
            ("Float", Json::Num(raw)) => raw
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| e.to_string()),
            ("Float", Json::Null) => Ok(Value::Float(f64::NAN)),
            ("Str", Json::Str(s)) => Ok(Value::from(s.as_str())),
            ("Bool", Json::Bool(b)) => Ok(Value::Bool(*b)),
            (tag, _) => Err(format!("unknown value tag `{tag}`")),
        }
    }

    /// Decode an already-parsed event object (the shape written by
    /// [`encode_event`]). [`decode_event`] is the line-oriented wrapper;
    /// this entry point serves callers that embed events inside a larger
    /// document (the network front-end's JSON ingest frames).
    pub fn event_from_json(v: &Json) -> Result<Event, String> {
        let time = v
            .get("time")
            .and_then(Json::as_u64)
            .ok_or("event lacks a numeric `time`")?;
        let type_id = v
            .get("type_id")
            .and_then(Json::as_u64)
            .ok_or("event lacks a numeric `type_id`")?;
        let attrs = v
            .get("attrs")
            .and_then(Json::as_array)
            .ok_or("event lacks `attrs`")?;
        let attrs: Vec<Value> = attrs
            .iter()
            .map(value_from_json)
            .collect::<Result<_, _>>()?;
        let type_id =
            u16::try_from(type_id).map_err(|_| format!("type_id {type_id} out of range"))?;
        Ok(Event::new_unchecked(TypeId(type_id), Time(time), attrs))
    }

    /// Decode one schema object (`{"name":…,"attributes":[…]}`).
    pub fn schema_from_json(s: &Json) -> Result<Schema, String> {
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or("schema lacks `name`")?;
        let attrs = s
            .get("attributes")
            .and_then(Json::as_array)
            .ok_or("schema lacks `attributes`")?;
        let attrs: Vec<&str> = attrs
            .iter()
            .map(|a| a.as_str().ok_or("attribute name must be a string"))
            .collect::<Result<_, _>>()?;
        Ok(Schema::new(name, &attrs))
    }

    /// Decode the header line into its schemas.
    pub fn decode_registry(s: &str) -> Result<Vec<Schema>, String> {
        let v = parse(s)?;
        let schemas = v
            .get("schemas")
            .and_then(Json::as_array)
            .ok_or("missing `schemas`")?;
        schemas.iter().map(schema_from_json).collect()
    }

    /// Decode one event line.
    pub fn decode_event(s: &str) -> Result<Event, String> {
        event_from_json(&parse(s)?)
    }

    /// `s` as a JSON string literal (quoted and escaped).
    pub fn str_lit(s: &str) -> String {
        let mut out = String::new();
        push_str_lit(&mut out, s);
        out
    }

    fn push_str_lit(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("string write"),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// A parsed JSON value. Numbers stay as raw text (see module docs).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Number, unparsed.
        Num(String),
        /// String (unescaped).
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object, in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup (`None` on non-objects / missing keys).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        /// The array's items, if this is an array.
        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(a) => Some(a),
                _ => None,
            }
        }
        /// The object's key-value pairs in source order, if an object.
        pub fn as_object(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Obj(o) => Some(o),
                _ => None,
            }
        }
        /// The string payload, if a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }
        /// The number parsed as `u64`, if a number that fits.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(raw) => raw.parse().ok(),
                _ => None,
            }
        }
        /// The value as a bool, if a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Parse one JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
            Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Json::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut kvs = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(kvs));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    let val = parse_value(b, pos)?;
                    kvs.push((key, val));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(kvs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                    }
                }
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                if start == *pos {
                    return Err(format!("unexpected character at byte {start}"));
                }
                Ok(Json::Num(
                    std::str::from_utf8(&b[start..*pos])
                        .expect("ascii number")
                        .to_string(),
                ))
            }
        }
    }

    fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
        let hex = b.get(at..at + 4).ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = parse_hex4(b, *pos + 1)?;
                            *pos += 4;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: standard encoders emit the
                                // low half as an immediately following \uXXXX.
                                if b.get(*pos + 1..*pos + 3) != Some(br"\u".as_slice()) {
                                    return Err("high surrogate without \\u low half".into());
                                }
                                let lo = parse_hex4(b, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                *pos += 6;
                                let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                            } else {
                                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (possibly multi-byte).
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StockConfig, StockGen};

    fn sample() -> (SchemaRegistry, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        let gen = StockGen::new(
            StockConfig {
                events: 50,
                halt_rate: 0.05,
                ..Default::default()
            },
            &mut reg,
        )
        .unwrap();
        let events = gen.generate();
        (reg, events)
    }

    #[test]
    fn csv_round_trip() {
        let (reg, events) = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &reg, &events).unwrap();
        let (reg2, events2) = read_csv(buf.as_slice()).unwrap();
        assert_eq!(reg.len(), reg2.len());
        assert_eq!(events, events2);
    }

    #[test]
    fn jsonl_round_trip() {
        let (reg, events) = sample();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &reg, &events).unwrap();
        let (reg2, events2) = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(reg.len(), reg2.len());
        assert_eq!(events.len(), events2.len());
        // The JSON float formatter is not bit-exact on this platform's
        // serde_json build; compare values with ULP-level tolerance.
        for (a, b) in events.iter().zip(&events2) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.type_id, b.type_id);
            for (x, y) in a.attrs.iter().zip(b.attrs.iter()) {
                let (x, y) = (x.as_f64(), y.as_f64());
                if x.is_nan() && y.is_nan() {
                    continue;
                }
                assert!((x - y).abs() <= x.abs() * 1e-12, "{x} vs {y}");
            }
        }
        // Name lookups work on the reconstructed registry.
        assert!(reg2.type_id("Stock").is_ok());
    }

    #[test]
    fn csv_handles_all_value_kinds() {
        let mut reg = SchemaRegistry::new();
        let t = reg.register_type("T", &["i", "f", "s", "b"]).unwrap();
        let e = Event::new_unchecked(
            t,
            Time(7),
            vec![
                Value::Int(-3),
                Value::Float(2.5),
                Value::from("hello world"),
                Value::Bool(true),
            ],
        );
        let mut buf = Vec::new();
        write_csv(&mut buf, &reg, std::slice::from_ref(&e)).unwrap();
        let (_, events) = read_csv(buf.as_slice()).unwrap();
        assert_eq!(events[0], e);
    }

    #[test]
    fn jsonl_interop_edge_cases() {
        // Surrogate-pair escapes from standard encoders must decode.
        let doc = r#"{"time":1,"type_id":0,"attrs":[{"Str":"😀 ok"}]}"#;
        let e = json::decode_event(doc).unwrap();
        assert_eq!(e.attrs[0].as_str(), Some("😀 ok"));
        // Unpaired high surrogate is an error, not a panic.
        assert!(
            json::decode_event(r#"{"time":1,"type_id":0,"attrs":[{"Str":"\ud83d"}]}"#).is_err()
        );
        // Out-of-range type_id errors instead of silently truncating.
        let err = json::decode_event(r#"{"time":1,"type_id":70000,"attrs":[]}"#).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // Non-BMP chars round-trip through our own encoder too.
        let mut reg = SchemaRegistry::new();
        let t = reg.register_type("T", &["s"]).unwrap();
        let e = Event::new_unchecked(t, Time(3), vec![Value::from("naïve 🚀")]);
        let back = json::decode_event(&json::encode_event(&e)).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn csv_errors_are_located() {
        let bad = "#schema,T,x\nT,notatime,i:1\n";
        let err = read_csv(bad.as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
        let unknown_type = "#schema,T,x\nU,1,i:1\n";
        assert!(matches!(
            read_csv(unknown_type.as_bytes()),
            Err(IoError::Type(_))
        ));
        let bad_kind = "#schema,T,x\nT,1,z:1\n";
        assert!(matches!(
            read_csv(bad_kind.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn loaded_stream_feeds_the_engine() {
        use greta_core::GretaEngine;
        use greta_query::CompiledQuery;
        let (reg, events) = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &reg, &events).unwrap();
        let (reg2, events2) = read_csv(buf.as_slice()).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 1000 SLIDE 1000",
            &reg2,
        )
        .unwrap();
        let mut engine = GretaEngine::<f64>::new(q, reg2).unwrap();
        let rows = engine.run(&events2).unwrap();
        assert!(!rows.is_empty());
    }
}
