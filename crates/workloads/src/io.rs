//! Stream persistence: export generated workloads and import recorded
//! streams (reproducibility artifacts — the paper's experiments are run on
//! stored data sets; ours can be serialized the same way).
//!
//! Two formats:
//!
//! * **CSV** — one file per run: `type,time,attr1=value,…` with a schema
//!   header line; human-diffable, round-trips every [`Value`] variant.
//! * **JSONL** — one serde-serialized event per line, with the schema
//!   registry on the first line (floats round-trip to within one ULP of
//!   the JSON formatter).

use greta_types::{Event, Schema, SchemaRegistry, Time, TypeError, Value};
use std::io::{BufRead, Write};

/// Errors raised while reading a persisted stream.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line with its 1-based line number.
    Parse {
        /// Line number.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Schema mismatch while resolving a type.
    Type(TypeError),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Type(e) => write!(f, "{e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
impl From<TypeError> for IoError {
    fn from(e: TypeError) -> Self {
        IoError::Type(e)
    }
}
impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Write a stream as CSV. The header block declares each schema as
/// `#schema,TypeName,attr1,attr2,…`; each event line is
/// `TypeName,time,v1,v2,…` with values rendered by kind prefix
/// (`i:`, `f:`, `s:`, `b:`).
pub fn write_csv(
    w: &mut impl Write,
    reg: &SchemaRegistry,
    events: &[Event],
) -> Result<(), IoError> {
    for (_, schema) in reg.iter() {
        write!(w, "#schema,{}", schema.name)?;
        for a in &schema.attributes {
            write!(w, ",{a}")?;
        }
        writeln!(w)?;
    }
    for e in events {
        let schema = reg.schema(e.type_id);
        write!(w, "{},{}", schema.name, e.time.ticks())?;
        for v in e.attrs.iter() {
            match v {
                Value::Int(i) => write!(w, ",i:{i}")?,
                Value::Float(f) => write!(w, ",f:{f}")?,
                Value::Str(s) => write!(w, ",s:{s}")?,
                Value::Bool(b) => write!(w, ",b:{b}")?,
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a CSV stream (see [`write_csv`]). Returns the reconstructed
/// registry and the events in file order.
pub fn read_csv(r: impl BufRead) -> Result<(SchemaRegistry, Vec<Event>), IoError> {
    let mut reg = SchemaRegistry::new();
    let mut events = Vec::new();
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = ln + 1;
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let first = parts.next().unwrap_or_default();
        if first == "#schema" {
            let name = parts.next().ok_or_else(|| IoError::Parse {
                line: lineno,
                msg: "missing schema name".into(),
            })?;
            let attrs: Vec<&str> = parts.collect();
            reg.register(Schema::new(name, &attrs))?;
            continue;
        }
        let tid = reg.type_id(first)?;
        let time: u64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| IoError::Parse {
                line: lineno,
                msg: "missing/invalid time stamp".into(),
            })?;
        let mut attrs = Vec::new();
        for cell in parts {
            let (kind, raw) = cell.split_at(cell.find(':').ok_or_else(|| IoError::Parse {
                line: lineno,
                msg: format!("value `{cell}` lacks a kind prefix"),
            })?);
            let raw = &raw[1..];
            let v = match kind {
                "i" => Value::Int(raw.parse().map_err(|_| IoError::Parse {
                    line: lineno,
                    msg: format!("bad int `{raw}`"),
                })?),
                "f" => Value::Float(raw.parse().map_err(|_| IoError::Parse {
                    line: lineno,
                    msg: format!("bad float `{raw}`"),
                })?),
                "s" => Value::from(raw),
                "b" => Value::Bool(raw == "true"),
                other => {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: format!("unknown value kind `{other}`"),
                    })
                }
            };
            attrs.push(v);
        }
        events.push(Event::new(&reg, tid, Time(time), attrs)?);
    }
    Ok((reg, events))
}

/// Write a stream as JSONL: line 1 is the schema registry, every following
/// line one event.
pub fn write_jsonl(
    w: &mut impl Write,
    reg: &SchemaRegistry,
    events: &[Event],
) -> Result<(), IoError> {
    serde_json::to_writer(&mut *w, reg)?;
    writeln!(w)?;
    for e in events {
        serde_json::to_writer(&mut *w, e)?;
        writeln!(w)?;
    }
    Ok(())
}

/// Read a JSONL stream written by [`write_jsonl`].
pub fn read_jsonl(r: impl BufRead) -> Result<(SchemaRegistry, Vec<Event>), IoError> {
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| IoError::Parse {
        line: 1,
        msg: "empty file".into(),
    })??;
    // The registry's name index is #[serde(skip)]; rebuild it by
    // re-registering every schema.
    let raw: SchemaRegistry = serde_json::from_str(&header)?;
    let mut reg = SchemaRegistry::new();
    for (_, schema) in raw.iter() {
        reg.register(schema.clone())?;
    }
    let mut events = Vec::new();
    for (ln, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let e: Event = serde_json::from_str(&line).map_err(|e| IoError::Parse {
            line: ln + 2,
            msg: e.to_string(),
        })?;
        events.push(e);
    }
    Ok((reg, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StockConfig, StockGen};

    fn sample() -> (SchemaRegistry, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        let gen = StockGen::new(
            StockConfig {
                events: 50,
                halt_rate: 0.05,
                ..Default::default()
            },
            &mut reg,
        )
        .unwrap();
        let events = gen.generate();
        (reg, events)
    }

    #[test]
    fn csv_round_trip() {
        let (reg, events) = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &reg, &events).unwrap();
        let (reg2, events2) = read_csv(buf.as_slice()).unwrap();
        assert_eq!(reg.len(), reg2.len());
        assert_eq!(events, events2);
    }

    #[test]
    fn jsonl_round_trip() {
        let (reg, events) = sample();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &reg, &events).unwrap();
        let (reg2, events2) = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(reg.len(), reg2.len());
        assert_eq!(events.len(), events2.len());
        // The JSON float formatter is not bit-exact on this platform's
        // serde_json build; compare values with ULP-level tolerance.
        for (a, b) in events.iter().zip(&events2) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.type_id, b.type_id);
            for (x, y) in a.attrs.iter().zip(b.attrs.iter()) {
                let (x, y) = (x.as_f64(), y.as_f64());
                if x.is_nan() && y.is_nan() {
                    continue;
                }
                assert!((x - y).abs() <= x.abs() * 1e-12, "{x} vs {y}");
            }
        }
        // Name lookups work on the reconstructed registry.
        assert!(reg2.type_id("Stock").is_ok());
    }

    #[test]
    fn csv_handles_all_value_kinds() {
        let mut reg = SchemaRegistry::new();
        let t = reg.register_type("T", &["i", "f", "s", "b"]).unwrap();
        let e = Event::new_unchecked(
            t,
            Time(7),
            vec![
                Value::Int(-3),
                Value::Float(2.5),
                Value::from("hello world"),
                Value::Bool(true),
            ],
        );
        let mut buf = Vec::new();
        write_csv(&mut buf, &reg, std::slice::from_ref(&e)).unwrap();
        let (_, events) = read_csv(buf.as_slice()).unwrap();
        assert_eq!(events[0], e);
    }

    #[test]
    fn csv_errors_are_located() {
        let bad = "#schema,T,x\nT,notatime,i:1\n";
        let err = read_csv(bad.as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
        let unknown_type = "#schema,T,x\nU,1,i:1\n";
        assert!(matches!(
            read_csv(unknown_type.as_bytes()),
            Err(IoError::Type(_))
        ));
        let bad_kind = "#schema,T,x\nT,1,z:1\n";
        assert!(matches!(
            read_csv(bad_kind.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn loaded_stream_feeds_the_engine() {
        use greta_core::GretaEngine;
        use greta_query::CompiledQuery;
        let (reg, events) = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &reg, &events).unwrap();
        let (reg2, events2) = read_csv(buf.as_slice()).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 1000 SLIDE 1000",
            &reg2,
        )
        .unwrap();
        let mut engine = GretaEngine::<f64>::new(q, reg2).unwrap();
        let rows = engine.run(&events2).unwrap();
        assert!(!rows.is_empty());
    }
}
