//! # greta-workloads
//!
//! Synthetic workload generators reproducing the three data sets of the
//! GRETA evaluation (paper §10.1):
//!
//! * [`stock`] — NYSE-like financial transactions (the real data set \[5\] is
//!   no longer freely available; the generator reproduces the properties
//!   GRETA is sensitive to: events per window, price-comparison selectivity,
//!   company/sector grouping).
//! * [`linear_road`] — position reports in the spirit of the Linear Road
//!   benchmark \[7\], with a configurable accident process for query Q3.
//! * [`cluster`] — Hadoop cluster measurements exactly per Table 2
//!   (uniform mapper/job ids 0–10, uniform CPU/memory 0–1k, Poisson(λ=100)
//!   load).
//!
//! All generators are seeded (deterministic), emit in-order events, and let
//! the caller choose the time-stamp granularity via [`Timestamps`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod io;
pub mod linear_road;
pub mod rng;
pub mod stock;

pub use cluster::{ClusterConfig, ClusterGen};
pub use linear_road::{LinearRoadConfig, LinearRoadGen};
pub use stock::{StockConfig, StockGen};

/// Time-stamp assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timestamps {
    /// One tick per event (strictly increasing — maximal adjacency; the
    /// default for benchmarks since Definition 1 requires strictly
    /// increasing times within a trend).
    PerEvent,
    /// `n` events share each tick (models a wall-clock rate with
    /// second-resolution stamps like the paper's data sets).
    PerTick(u32),
}

impl Timestamps {
    /// Time stamp of the `i`-th generated event.
    pub fn time_of(self, i: u64) -> greta_types::Time {
        match self {
            Timestamps::PerEvent => greta_types::Time(i),
            Timestamps::PerTick(n) => greta_types::Time(i / n.max(1) as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_policies() {
        assert_eq!(Timestamps::PerEvent.time_of(7), greta_types::Time(7));
        assert_eq!(Timestamps::PerTick(3).time_of(7), greta_types::Time(2));
        assert_eq!(Timestamps::PerTick(0).time_of(7), greta_types::Time(7));
    }
}
