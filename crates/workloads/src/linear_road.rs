//! Linear-Road-like traffic stream (paper §10.1 uses the Linear Road
//! benchmark simulator \[7\]; we generate the same event shape).
//!
//! Position reports carry `(vehicle, segment, position, speed)`; speeds
//! follow per-vehicle random walks whose step distribution controls the
//! selectivity of the `P.speed > NEXT(P).speed` edge predicate of query Q3
//! (swept in Fig. 16). An optional accident process emits `Accident`
//! events per segment (the negative sub-pattern of Q3).

use crate::{rng::seeded, Timestamps};
use greta_types::{Event, SchemaRegistry, TypeError, TypeId, Value};
use rand::Rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct LinearRoadConfig {
    /// Number of position reports to generate.
    pub events: usize,
    /// Number of vehicles.
    pub vehicles: usize,
    /// Number of road segments.
    pub segments: usize,
    /// Probability that a step decreases the speed (selectivity knob for
    /// the Q3 edge predicate; 0.5 = symmetric walk).
    pub slowdown_bias: f64,
    /// Probability, per position report, of an accident event being
    /// injected (0 disables the negative sub-pattern workload).
    pub accident_rate: f64,
    /// Time-stamp policy.
    pub timestamps: Timestamps,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinearRoadConfig {
    fn default() -> Self {
        LinearRoadConfig {
            events: 10_000,
            vehicles: 50,
            segments: 10,
            slowdown_bias: 0.5,
            accident_rate: 0.0,
            timestamps: Timestamps::PerEvent,
            seed: 0x11_4e_a0_0d,
        }
    }
}

/// The Linear-Road-like generator.
#[derive(Debug, Clone)]
pub struct LinearRoadGen {
    /// Configuration used.
    pub config: LinearRoadConfig,
    /// `Position` type id.
    pub position: TypeId,
    /// `Accident` type id.
    pub accident: TypeId,
}

impl LinearRoadGen {
    /// Register the `Position` and `Accident` schemas.
    pub fn new(
        config: LinearRoadConfig,
        reg: &mut SchemaRegistry,
    ) -> Result<LinearRoadGen, TypeError> {
        let position =
            reg.register_type("Position", &["vehicle", "segment", "position", "speed"])?;
        let accident = reg.register_type("Accident", &["segment"])?;
        Ok(LinearRoadGen {
            config,
            position,
            accident,
        })
    }

    /// Generate the stream.
    pub fn generate(&self) -> Vec<Event> {
        let c = &self.config;
        let mut rng = seeded(c.seed);
        let nv = c.vehicles.max(1);
        let mut speeds: Vec<f64> = (0..nv).map(|_| rng.gen_range(40.0..80.0)).collect();
        let mut positions: Vec<i64> = vec![0; nv];
        let vehicle_segment: Vec<usize> = (0..nv).map(|v| v % c.segments.max(1)).collect();
        let mut out = Vec::with_capacity(c.events);
        let mut i = 0u64;
        for _ in 0..c.events {
            let v = rng.gen_range(0..nv);
            let dir = if rng.gen_bool(c.slowdown_bias.clamp(0.0, 1.0)) {
                -1.0
            } else {
                1.0
            };
            speeds[v] = (speeds[v] + dir * rng.gen_range(0.1..3.0)).clamp(1.0, 120.0);
            positions[v] += speeds[v] as i64;
            let t = c.timestamps.time_of(i);
            i += 1;
            out.push(Event::new_unchecked(
                self.position,
                t,
                vec![
                    Value::Int(v as i64),
                    Value::Int(vehicle_segment[v] as i64),
                    Value::Int(positions[v]),
                    Value::Float(speeds[v]),
                ],
            ));
            if c.accident_rate > 0.0 && rng.gen_bool(c.accident_rate.clamp(0.0, 1.0)) {
                let seg = rng.gen_range(0..c.segments.max(1));
                let t = c.timestamps.time_of(i);
                i += 1;
                out.push(Event::new_unchecked(
                    self.accident,
                    t,
                    vec![Value::Int(seg as i64)],
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::stream::check_in_order;

    #[test]
    fn generates_in_order_with_accidents() {
        let mut reg = SchemaRegistry::new();
        let g = LinearRoadGen::new(
            LinearRoadConfig {
                events: 5000,
                accident_rate: 0.01,
                ..Default::default()
            },
            &mut reg,
        )
        .unwrap();
        let evs = g.generate();
        assert!(check_in_order(&evs));
        let n_acc = evs.iter().filter(|e| e.type_id == g.accident).count();
        assert!(n_acc > 10 && n_acc < 200, "n_acc={n_acc}");
    }

    #[test]
    fn slowdown_bias_controls_predicate_selectivity() {
        let mut reg = SchemaRegistry::new();
        let count_downs = |bias: f64| {
            let mut reg2 = SchemaRegistry::new();
            let g = LinearRoadGen::new(
                LinearRoadConfig {
                    events: 4000,
                    vehicles: 1,
                    slowdown_bias: bias,
                    seed: 9,
                    ..Default::default()
                },
                &mut reg2,
            )
            .unwrap();
            let evs = g.generate();
            let speed = reg2.schema(g.position).attr("speed").unwrap();
            evs.windows(2)
                .filter(|w| w[0].attr(speed).as_f64() > w[1].attr(speed).as_f64())
                .count()
        };
        let _ = &mut reg;
        assert!(count_downs(0.9) > count_downs(0.1));
    }

    #[test]
    fn speeds_stay_in_bounds() {
        let mut reg = SchemaRegistry::new();
        let g = LinearRoadGen::new(LinearRoadConfig::default(), &mut reg).unwrap();
        let speed = reg.schema(g.position).attr("speed").unwrap();
        for e in g.generate() {
            if e.type_id == g.position {
                let s = e.attr(speed).as_f64();
                assert!((1.0..=120.0).contains(&s));
            }
        }
    }
}
