//! Hadoop cluster monitoring stream (paper §10.1, Table 2):
//!
//! | attribute          | distribution        | min–max |
//! |--------------------|---------------------|---------|
//! | mapper id, job id  | uniform             | 0–10    |
//! | CPU, memory        | uniform             | 0–1k    |
//! | load               | Poisson (λ = 100)   | 0–10k   |
//!
//! The stream interleaves `Start` / `Measurement` / `End` job lifecycle
//! events per (job, mapper) pair — the workload of query Q2. The number of
//! distinct mapper ids is the *trend group* knob swept in Fig. 17.

use crate::rng::{poisson, seeded};
use crate::Timestamps;
use greta_types::{Event, SchemaRegistry, TypeError, TypeId, Value};
use rand::Rng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Number of distinct mapper ids (groups; Table 2 default: 0–10).
    pub mappers: u32,
    /// Number of distinct job ids (Table 2: 0–10).
    pub jobs: u32,
    /// Fraction of lifecycle events (`Start`/`End`) vs measurements.
    pub lifecycle_rate: f64,
    /// Poisson λ for the load attribute (Table 2: 100).
    pub load_lambda: f64,
    /// Time-stamp policy.
    pub timestamps: Timestamps,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            events: 10_000,
            mappers: 10,
            jobs: 10,
            lifecycle_rate: 0.05,
            load_lambda: 100.0,
            timestamps: Timestamps::PerEvent,
            seed: 0xc1_05_7e_12,
        }
    }
}

/// The cluster measurement generator.
#[derive(Debug, Clone)]
pub struct ClusterGen {
    /// Configuration used.
    pub config: ClusterConfig,
    /// `Start` type id.
    pub start: TypeId,
    /// `Measurement` type id.
    pub measurement: TypeId,
    /// `End` type id.
    pub end: TypeId,
}

impl ClusterGen {
    /// Register the three schemas.
    pub fn new(config: ClusterConfig, reg: &mut SchemaRegistry) -> Result<ClusterGen, TypeError> {
        let start = reg.register_type("Start", &["job", "mapper"])?;
        let measurement =
            reg.register_type("Measurement", &["job", "mapper", "cpu", "memory", "load"])?;
        let end = reg.register_type("End", &["job", "mapper"])?;
        Ok(ClusterGen {
            config,
            start,
            measurement,
            end,
        })
    }

    /// Generate the stream. Each (job, mapper) pair cycles through
    /// Start → Measurement* → End so Q2's `SEQ(Start, Measurement+, End)`
    /// has matches in every group.
    pub fn generate(&self) -> Vec<Event> {
        let c = &self.config;
        let mut rng = seeded(c.seed);
        let mappers = c.mappers.max(1);
        let jobs = c.jobs.max(1);
        // Lifecycle phase per (job, mapper): false = needs Start next.
        let mut running = vec![false; (mappers * jobs) as usize];
        let mut out = Vec::with_capacity(c.events);
        for i in 0..c.events {
            let mapper = rng.gen_range(0..mappers) as i64;
            let job = rng.gen_range(0..jobs) as i64;
            let slot = (job as u32 * mappers + mapper as u32) as usize;
            let t = c.timestamps.time_of(i as u64);
            let lifecycle = rng.gen_bool(c.lifecycle_rate.clamp(0.0, 1.0));
            if !running[slot] {
                // Must start the job before measurements can match.
                running[slot] = true;
                out.push(Event::new_unchecked(
                    self.start,
                    t,
                    vec![Value::Int(job), Value::Int(mapper)],
                ));
            } else if lifecycle {
                running[slot] = false;
                out.push(Event::new_unchecked(
                    self.end,
                    t,
                    vec![Value::Int(job), Value::Int(mapper)],
                ));
            } else {
                out.push(Event::new_unchecked(
                    self.measurement,
                    t,
                    vec![
                        Value::Int(job),
                        Value::Int(mapper),
                        Value::Int(rng.gen_range(0..=1000)),
                        Value::Int(rng.gen_range(0..=1000)),
                        Value::Int(poisson(&mut rng, c.load_lambda).min(10_000) as i64),
                    ],
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::stream::check_in_order;

    fn gen(events: usize, mappers: u32) -> (SchemaRegistry, ClusterGen, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        let g = ClusterGen::new(
            ClusterConfig {
                events,
                mappers,
                ..Default::default()
            },
            &mut reg,
        )
        .unwrap();
        let evs = g.generate();
        (reg, g, evs)
    }

    #[test]
    fn table_2_attribute_ranges() {
        let (reg, g, evs) = gen(5000, 10);
        assert!(check_in_order(&evs));
        let schema = reg.schema(g.measurement).clone();
        let job = schema.attr("job").unwrap();
        let mapper = schema.attr("mapper").unwrap();
        let cpu = schema.attr("cpu").unwrap();
        let mem = schema.attr("memory").unwrap();
        let load = schema.attr("load").unwrap();
        for e in evs.iter().filter(|e| e.type_id == g.measurement) {
            assert!((0..10).contains(&e.attr(job).as_i64().unwrap()));
            assert!((0..10).contains(&e.attr(mapper).as_i64().unwrap()));
            assert!((0..=1000).contains(&e.attr(cpu).as_i64().unwrap()));
            assert!((0..=1000).contains(&e.attr(mem).as_i64().unwrap()));
            assert!((0..=10_000).contains(&e.attr(load).as_i64().unwrap()));
        }
    }

    #[test]
    fn load_is_poisson_100() {
        let (reg, g, evs) = gen(8000, 10);
        let load = reg.schema(g.measurement).attr("load").unwrap();
        let loads: Vec<f64> = evs
            .iter()
            .filter(|e| e.type_id == g.measurement)
            .map(|e| e.attr(load).as_f64())
            .collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean={mean}");
        // Poisson(100) variance ≈ 100.
        let var = loads.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / loads.len() as f64;
        assert!((var - 100.0).abs() < 25.0, "var={var}");
    }

    #[test]
    fn lifecycle_is_well_formed_per_group() {
        // Between a Start and the next Start of the same (job, mapper)
        // there is exactly one End.
        let (_, g, evs) = gen(3000, 4);
        use std::collections::HashMap;
        let mut state: HashMap<(i64, i64), bool> = HashMap::new();
        for e in &evs {
            let key = (e.attrs[0].as_i64().unwrap(), e.attrs[1].as_i64().unwrap());
            let running = state.entry(key).or_insert(false);
            if e.type_id == g.start {
                assert!(!*running, "Start while running {key:?}");
                *running = true;
            } else if e.type_id == g.end {
                assert!(*running, "End while stopped {key:?}");
                *running = false;
            } else {
                assert!(*running, "Measurement while stopped {key:?}");
            }
        }
    }

    #[test]
    fn mapper_count_controls_groups() {
        let (_, g, evs) = gen(2000, 3);
        let mappers: std::collections::HashSet<i64> =
            evs.iter().map(|e| e.attrs[1].as_i64().unwrap()).collect();
        assert!(mappers.len() <= 3);
        let _ = g;
    }
}
