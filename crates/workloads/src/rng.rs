//! Seeded random sampling helpers shared by the generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Poisson(λ) sampler (Knuth's product-of-uniforms algorithm, adequate for
/// the λ = 100 load distribution of paper Table 2).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Defensive cap: Table 2 bounds load at 10k.
        if k >= 10_000 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = seeded(7);
        let n = 3000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, 100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = seeded(42);
            (0..10).map(|_| poisson(&mut r, 100.0)).collect()
        };
        let b: Vec<u64> = {
            let mut r = seeded(42);
            (0..10).map(|_| poisson(&mut r, 100.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_small_lambda() {
        let mut rng = seeded(1);
        let sum: u64 = (0..5000).map(|_| poisson(&mut rng, 2.0)).sum();
        let mean = sum as f64 / 5000.0;
        assert!((mean - 2.0).abs() < 0.2, "mean={mean}");
    }
}
