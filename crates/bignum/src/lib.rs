//! # greta-bignum
//!
//! A small, dependency-free arbitrary-precision **unsigned** integer.
//!
//! Under skip-till-any-match semantics the number of event trends grows
//! exponentially in the number of events (paper §2), so exact `COUNT(*)` /
//! `COUNT(E)` / `SUM` aggregates overflow `u64` after a few dozen compatible
//! events. The GRETA aggregation calculus only needs a semiring: addition,
//! multiplication, zero and one — which is exactly what [`BigUint`] provides,
//! plus comparison, decimal formatting, and lossy `f64` conversion for
//! reporting.
//!
//! The representation is little-endian base-2⁶⁴ limbs with no leading zero
//! limb (canonical form); `0` is the empty limb vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Arbitrary-precision unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    /// Little-endian base-2^64 limbs, canonical (no trailing zero limb).
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of limbs (for memory accounting).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// The little-endian base-2⁶⁴ limbs (canonical: no trailing zero limb).
    /// Used by the durability layer to serialize exact aggregates.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Reconstruct from little-endian base-2⁶⁴ limbs; trailing zero limbs
    /// are normalized away, so any limb vector is a valid input.
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Construct from `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut b = BigUint {
            limbs: vec![lo, hi],
        };
        b.normalize();
        b
    }

    /// Value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (exact below 2^53, otherwise rounded;
    /// saturates to `f64::INFINITY` above ~2^1024).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    }

    /// `self + other`, in place.
    pub fn add_assign_ref(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self - other`, in place. Panics on underflow (the aggregation
    /// calculus never subtracts below zero; inclusion–exclusion in §9 only
    /// subtracts counts of sub-multisets).
    pub fn sub_assign_ref(&mut self, other: &BigUint) {
        assert!(
            *self >= *other,
            "BigUint underflow: minuend smaller than subtrahend"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Multiply by a machine word, in place.
    pub fn mul_u64(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = *limb as u128 * m as u128 + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        while carry > 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
    }

    /// Full schoolbook multiplication.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Divide by a machine word, returning the remainder.
    pub fn div_rem_u64(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | *limb as u128;
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        self.normalize();
        rem as u64
    }

    /// `n * (n - 1) / 2` — the binomial coefficient C(n, 2) used by the
    /// conjunction count formula of §9.
    pub fn choose_2(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut n_minus_1 = self.clone();
        n_minus_1.sub_assign_ref(&BigUint::one());
        let mut prod = self.mul_ref(&n_minus_1);
        let rem = prod.div_rem_u64(2);
        debug_assert_eq!(rem, 0);
        prod
    }

    /// Heap bytes used (memory accounting).
    pub fn heap_size(&self) -> usize {
        self.limbs.capacity() * std::mem::size_of::<u64>()
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: &BigUint) -> BigUint {
        self.add_assign_ref(rhs);
        self
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel 19 decimal digits at a time (10^19 is the largest power of
        // ten below 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut chunks = Vec::new();
        while !n.is_zero() {
            chunks.push(n.div_rem_u64(CHUNK));
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::one().to_u64(), Some(1));
        assert_eq!(BigUint::zero().to_string(), "0");
    }

    #[test]
    fn addition_with_carry() {
        let mut a = BigUint::from_u64(u64::MAX);
        a.add_assign_ref(&BigUint::one());
        assert_eq!(a.to_u64(), None);
        assert_eq!(a.to_string(), "18446744073709551616"); // 2^64
    }

    #[test]
    fn subtraction() {
        let mut a = BigUint::from_u128(1u128 << 64);
        a.sub_assign_ref(&BigUint::one());
        assert_eq!(a.to_u64(), Some(u64::MAX));
        let mut b = BigUint::from_u64(5);
        b.sub_assign_ref(&BigUint::from_u64(5));
        assert!(b.is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let mut a = BigUint::from_u64(1);
        a.sub_assign_ref(&BigUint::from_u64(2));
    }

    #[test]
    fn scalar_multiplication() {
        let mut a = BigUint::from_u64(u64::MAX);
        a.mul_u64(u64::MAX);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(a.to_string(), "340282366920938463426481119284349108225");
        a.mul_u64(0);
        assert!(a.is_zero());
    }

    #[test]
    fn full_multiplication() {
        let a = BigUint::from_u128(u128::MAX);
        let b = BigUint::from_u64(3);
        assert_eq!(
            a.mul_ref(&b).to_string(),
            "1020847100762815390390123822295304634365"
        );
        assert!(BigUint::zero().mul_ref(&a).is_zero());
    }

    #[test]
    fn powers_of_two_exact() {
        // 2^200 by repeated doubling.
        let mut p = BigUint::one();
        for _ in 0..200 {
            p.mul_u64(2);
        }
        assert_eq!(
            p.to_string(),
            "1606938044258990275541962092341162602522202993782792835301376"
        );
        assert!((p.to_f64() - 2f64.powi(200)).abs() / 2f64.powi(200) < 1e-12);
    }

    #[test]
    fn division_and_display_roundtrip() {
        let mut a = BigUint::from_u128(123_456_789_012_345_678_901_234_567_890u128);
        assert_eq!(a.to_string(), "123456789012345678901234567890");
        let rem = a.div_rem_u64(1_000_000_000);
        assert_eq!(rem, 234_567_890);
        assert_eq!(a.to_string(), "123456789012345678901");
    }

    #[test]
    fn choose_2_small() {
        assert!(BigUint::zero().choose_2().is_zero());
        assert!(BigUint::one().choose_2().is_zero());
        assert_eq!(BigUint::from_u64(5).choose_2().to_u64(), Some(10));
        assert_eq!(BigUint::from_u64(100).choose_2().to_u64(), Some(4950));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u128(1u128 << 100);
        let b = BigUint::from_u64(u64::MAX);
        assert!(a > b);
        assert!(BigUint::zero() < BigUint::one());
        assert_eq!(a.cmp(&a.clone()), std::cmp::Ordering::Equal);
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
            let mut x = BigUint::from_u64(a);
            x.add_assign_ref(&BigUint::from_u64(b));
            prop_assert_eq!(x, BigUint::from_u128(a as u128 + b as u128));
        }

        #[test]
        fn mul_matches_u128(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
            let mut x = BigUint::from_u64(a);
            x.mul_u64(b);
            prop_assert_eq!(x.clone(), BigUint::from_u128(a as u128 * b as u128));
            let y = BigUint::from_u64(a).mul_ref(&BigUint::from_u64(b));
            prop_assert_eq!(x, y);
        }

        #[test]
        fn add_then_sub_roundtrips(a in any::<u128>(), b in any::<u128>()) {
            let mut x = BigUint::from_u128(a);
            x.add_assign_ref(&BigUint::from_u128(b));
            x.sub_assign_ref(&BigUint::from_u128(b));
            prop_assert_eq!(x, BigUint::from_u128(a));
        }

        #[test]
        fn display_matches_u128(v in any::<u128>()) {
            prop_assert_eq!(BigUint::from_u128(v).to_string(), v.to_string());
        }

        #[test]
        fn ord_matches_u128(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(
                BigUint::from_u128(a).cmp(&BigUint::from_u128(b)),
                a.cmp(&b)
            );
        }

        #[test]
        fn to_f64_close(v in any::<u128>()) {
            let f = BigUint::from_u128(v).to_f64();
            let expect = v as f64;
            if expect > 0.0 {
                prop_assert!((f - expect).abs() / expect < 1e-9);
            } else {
                prop_assert_eq!(f, 0.0);
            }
        }
    }
}
