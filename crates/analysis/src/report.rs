//! Findings: what a pass reports, and how the CLI renders them.

use std::fmt;

/// The four lint passes (names double as `lint:allow(<pass>)` keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Allocation-free hot regions (`// lint:hot-path`).
    HotPath,
    /// Panic-freedom in serving/durability code.
    Panic,
    /// Encode/decode + version-constant symmetry.
    Codec,
    /// Lock ordering and no-lock-across-socket-write.
    Lock,
    /// Meta findings about the annotations themselves (malformed
    /// directives, empty `allow` reasons, unknown pass names).
    Annotation,
}

impl Pass {
    /// The `lint:allow(...)` key for this pass.
    pub fn key(self) -> &'static str {
        match self {
            Pass::HotPath => "hot-path",
            Pass::Panic => "panic",
            Pass::Codec => "codec",
            Pass::Lock => "lock",
            Pass::Annotation => "annotation",
        }
    }

    /// Parse an `allow(...)` key.
    pub fn from_key(s: &str) -> Option<Pass> {
        Some(match s {
            "hot-path" => Pass::HotPath,
            "panic" => Pass::Panic,
            "codec" => Pass::Codec,
            "lock" => Pass::Lock,
            "annotation" => Pass::Annotation,
            _ => return None,
        })
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One unsuppressed lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced it.
    pub pass: Pass,
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description, including the remedy.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.pass, self.message
        )
    }
}
