//! Structure on top of the token stream: matched delimiters, function
//! and `impl`-block spans, `#[cfg(test)]` / `#[test]` regions, and the
//! suppression logic for `// lint:allow` directives.

use crate::lexer::{lex, Directive, DirectiveKind, Lexed, Token, TokenKind};

/// A half-open token range `[start, end)`.
pub type TokRange = (usize, usize);

/// One `fn` item: its name and the token range of its body (inside the
/// braces, exclusive of them).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Body tokens, braces excluded. Empty for trait-method signatures.
    pub body: TokRange,
}

/// A lexed file plus the derived structure every pass consumes.
pub struct SourceFile {
    /// Repo-relative path (used in findings).
    pub path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// `lint:` directives.
    pub directives: Vec<Directive>,
    /// For every `{`/`(`/`[` token index, the index of its closer (and
    /// vice versa). `usize::MAX` when unbalanced.
    pub matching: Vec<usize>,
    /// All function items in source order (nested fns included).
    pub fns: Vec<FnSpan>,
    /// Token ranges covered by `#[cfg(test)]` items or `#[test]` fns.
    pub test_regions: Vec<TokRange>,
}

impl SourceFile {
    /// Lex and structure one file.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let Lexed { tokens, directives } = lex(src);
        let matching = match_delims(&tokens);
        let fns = find_fns(&tokens, &matching);
        let test_regions = find_test_regions(&tokens, &matching);
        SourceFile {
            path: path.to_string(),
            tokens,
            directives,
            matching,
            fns,
            test_regions,
        }
    }

    /// True when token index `i` lies inside a test region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| i >= a && i < b)
    }

    /// True when a finding of `pass` on `line` is suppressed by an
    /// `allow` directive on the same or the preceding line.
    pub fn allowed(&self, pass: &str, line: u32) -> bool {
        self.directives.iter().any(|d| {
            matches!(&d.kind, DirectiveKind::Allow { pass: p, .. } if p == pass)
                && (d.line == line || d.line + 1 == line)
        })
    }

    /// The functions whose body *contains* token index `i` (innermost
    /// last).
    pub fn enclosing_fns(&self, i: usize) -> impl Iterator<Item = &FnSpan> {
        self.fns
            .iter()
            .filter(move |f| i >= f.body.0 && i < f.body.1)
    }

    /// Declared lock order, if any `lint:lock-order` directive exists.
    pub fn lock_order(&self) -> Option<&[String]> {
        self.directives.iter().find_map(|d| match &d.kind {
            DirectiveKind::LockOrder(names) => Some(names.as_slice()),
            _ => None,
        })
    }
}

/// Pair up `()`, `[]`, `{}` across the token stream.
fn match_delims(tokens: &[Token]) -> Vec<usize> {
    let mut matching = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Punct(c @ ('(' | '[' | '{')) => stack.push((c, i)),
            TokenKind::Punct(c @ (')' | ']' | '}')) => {
                let open = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                // Tolerate imbalance (shouldn't happen on code that
                // compiles): pop until the kinds agree.
                while let Some((k, j)) = stack.pop() {
                    if k == open {
                        matching[i] = j;
                        matching[j] = i;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    matching
}

/// Locate every `fn name ... { body }`.
///
/// The body is found by scanning forward from the name to the first `{`
/// at angle-bracket-neutral depth — good enough for real signatures
/// (return types and `where` clauses contain no braces in this
/// codebase). A `;` before any `{` means a bodiless trait signature.
fn find_fns(tokens: &[Token], matching: &[usize]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].kind.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        let Some(name) = name_tok.kind.ident() else {
            continue;
        };
        let mut j = i + 2;
        let mut body = (0usize, 0usize);
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct(';') => break,
                TokenKind::Punct('{') => {
                    let close = matching[j];
                    if close != usize::MAX {
                        body = (j + 1, close);
                    }
                    break;
                }
                TokenKind::Punct('(' | '[') => {
                    // Skip parameter lists / array types wholesale so a
                    // `{` inside a default-arg-like position can't fool
                    // the scan (closures in params are out of scope).
                    let close = matching[j];
                    if close == usize::MAX {
                        break;
                    }
                    j = close + 1;
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        fns.push(FnSpan {
            name: name.to_string(),
            line: tokens[i].line,
            fn_tok: i,
            body,
        });
    }
    fns
}

/// Token ranges of items annotated `#[cfg(test)]` or `#[test]` (plus
/// `#[cfg(all(test, ...))]` etc. — any attribute whose argument list
/// contains the bare word `test`).
fn find_test_regions(tokens: &[Token], matching: &[usize]) -> Vec<TokRange> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].kind.is_punct('#') && tokens[i + 1].kind.is_punct('[') {
            let close = matching[i + 1];
            if close == usize::MAX {
                i += 1;
                continue;
            }
            let is_test_attr = tokens[i + 2..close].iter().any(|t| t.kind.is_ident("test"))
                && tokens[i + 2..close].iter().all(|t| !t.kind.is_ident("not"));
            if is_test_attr {
                // The annotated item runs to the end of its first
                // brace-block (mod/fn/impl body) or to a terminating `;`.
                let mut j = close + 1;
                // Skip further attributes on the same item.
                while j + 1 < tokens.len()
                    && tokens[j].kind.is_punct('#')
                    && tokens[j + 1].kind.is_punct('[')
                    && matching[j + 1] != usize::MAX
                {
                    j = matching[j + 1] + 1;
                }
                let mut end = tokens.len();
                let mut k = j;
                while k < tokens.len() {
                    match &tokens[k].kind {
                        TokenKind::Punct(';') => {
                            end = k + 1;
                            break;
                        }
                        TokenKind::Punct('{') => {
                            let c = matching[k];
                            end = if c == usize::MAX { tokens.len() } else { c + 1 };
                            break;
                        }
                        TokenKind::Punct('(' | '[') => {
                            let c = matching[k];
                            if c == usize::MAX {
                                break;
                            }
                            k = c + 1;
                            continue;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                regions.push((i, end));
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// `impl`-block body token ranges (braces excluded), with the line of
/// the `impl` keyword — the codec-symmetry pass checks `encode`/`decode`
/// pairing per block.
pub fn impl_blocks(file: &SourceFile) -> Vec<(u32, TokRange)> {
    let mut blocks = Vec::new();
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind.is_ident("impl") {
            let line = toks[i].line;
            let mut j = i + 1;
            while j < toks.len() {
                match &toks[j].kind {
                    TokenKind::Punct('{') => {
                        let c = file.matching[j];
                        if c != usize::MAX {
                            blocks.push((line, (j + 1, c)));
                            i = j; // nested impls don't occur; move on
                        }
                        break;
                    }
                    TokenKind::Punct(';') => break,
                    TokenKind::Punct('(' | '[') => {
                        let c = file.matching[j];
                        if c == usize::MAX {
                            break;
                        }
                        j = c + 1;
                        continue;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_bodies() {
        let f = SourceFile::parse(
            "x.rs",
            "fn a(x: u8) -> Vec<u8> { x.into() }\ntrait T { fn sig(&self); }\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "a");
        assert!(f.fns[0].body.1 > f.fns[0].body.0);
        assert_eq!(f.fns[1].name, "sig");
        assert_eq!(f.fns[1].body, (0, 0));
    }

    #[test]
    fn test_regions_cover_mod_and_fn() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
        ";
        let f = SourceFile::parse("x.rs", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test(unwraps[0]));
        assert!(f.in_test(unwraps[1]));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        let i = f
            .tokens
            .iter()
            .position(|t| t.kind.is_ident("unwrap"))
            .unwrap();
        assert!(!f.in_test(i));
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = "// lint:allow(panic): fine\nx.unwrap();\ny.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed("panic", 1));
        assert!(f.allowed("panic", 2));
        assert!(!f.allowed("panic", 3));
        assert!(!f.allowed("hot-path", 2));
    }

    #[test]
    fn impl_blocks_found() {
        let f = SourceFile::parse(
            "x.rs",
            "impl Foo { fn encode(&self) {} }\nimpl Bar for Baz { fn decode() {} }\n",
        );
        assert_eq!(impl_blocks(&f).len(), 2);
    }
}
