//! Hot-path allocation pass.
//!
//! Regions opened by `// lint:hot-path` (the next `fn` item's body)
//! must not allocate: the zero-copy event plane's −41 % routing win
//! (PR 3) regresses silently if a refactor re-introduces a per-event
//! allocation, and the bench gate's ±15 % band is too coarse to catch a
//! single small `clone()` on a many-branch path.
//!
//! Denied inside a hot region:
//!
//! * `.clone()`, `.to_vec()`, `.to_owned()`, `.to_string()`, `.collect(...)`
//! * `format!`, `vec!`
//! * `Vec::new`, `String::new`, `String::from`, `Box::new` (boxed
//!   trait-object construction included — it is just `Box::new` at an
//!   `dyn` coercion site)
//!
//! Intentional allocations (an `Arc` refcount clone on the broadcast
//! path, a frame buffer swap that allocates once per *frame*, not per
//! event) carry `// lint:allow(hot-path): <reason>` at the call site.

use crate::lexer::{DirectiveKind, TokenKind};
use crate::report::{Finding, Pass};
use crate::source::SourceFile;

const DENIED_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];
const DENIED_MACROS: &[&str] = &["format", "vec"];
const DENIED_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
];

/// Run the pass over one file.
pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    // Each `lint:hot-path` directive marks the next fn that starts
    // strictly after it.
    let mut regions: Vec<(u32, usize, usize)> = Vec::new(); // (directive line, body range)
    for d in &file.directives {
        if d.kind != DirectiveKind::HotPath {
            continue;
        }
        let marked = file
            .fns
            .iter()
            .filter(|f| f.line > d.line)
            .min_by_key(|f| f.line);
        match marked {
            Some(f) if f.body.1 > f.body.0 => regions.push((d.line, f.body.0, f.body.1)),
            _ => out.push(Finding {
                pass: Pass::Annotation,
                path: file.path.clone(),
                line: d.line,
                message: "`lint:hot-path` does not precede a function with a body".into(),
            }),
        }
    }
    for &(_, start, end) in &regions {
        scan_region(file, start, end, out);
    }
}

fn scan_region(file: &SourceFile, start: usize, end: usize, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in start..end {
        let Some(id) = toks[i].kind.ident() else {
            continue;
        };
        let line = toks[i].line;
        let prev = i.checked_sub(1).map(|p| &toks[p].kind);
        let next = toks.get(i + 1).map(|t| &t.kind);
        // `.method(` — denied allocating methods.
        if DENIED_METHODS.contains(&id)
            && prev.is_some_and(|p| p.is_punct('.'))
            && next_is_call(toks, i + 1)
        {
            report(file, line, format!(".{id}() allocates"), out);
        }
        // `macro!` — denied allocating macros.
        if DENIED_MACROS.contains(&id) && next.is_some_and(|n| n.is_punct('!')) {
            report(file, line, format!("{id}! allocates"), out);
        }
        // `Type::ctor` — denied allocating constructors.
        for &(ty, ctor) in DENIED_PATHS {
            if id == ty
                && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.kind.is_ident(ctor))
            {
                report(file, line, format!("{ty}::{ctor} allocates"), out);
            }
        }
    }
}

/// After a method name, a call is `(`, or `::<Turbofish>(`.
fn next_is_call(toks: &[crate::lexer::Token], mut i: usize) -> bool {
    if toks.get(i).is_some_and(|t| t.kind.is_punct(':'))
        && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.kind.is_punct('<'))
    {
        // Skip the turbofish by angle counting.
        let mut depth = 0usize;
        i += 2;
        while i < toks.len() {
            match &toks[i].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    toks.get(i).is_some_and(|t| t.kind.is_punct('('))
}

fn report(file: &SourceFile, line: u32, what: String, out: &mut Vec<Finding>) {
    if file.allowed(Pass::HotPath.key(), line) {
        return;
    }
    out.push(Finding {
        pass: Pass::HotPath,
        path: file.path.clone(),
        line,
        message: format!("{what} inside a `lint:hot-path` region"),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("x.rs", src);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn denies_alloc_in_marked_fn_only() {
        let src = "
            // lint:hot-path
            fn hot(&self) { let k = v.clone(); let s = format!(\"x\"); }
            fn cold(&self) { let k = v.clone(); }
        ";
        let f = findings(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.pass == Pass::HotPath));
    }

    #[test]
    fn denies_ctors_and_turbofish_collect() {
        let src = "
            // lint:hot-path
            fn hot() { let v = Vec::new(); let s: Vec<u8> = it.collect::<Vec<u8>>(); let b = Box::new(x); }
        ";
        assert_eq!(findings(src).len(), 3);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "
            // lint:hot-path
            fn hot(&self) {
                // lint:allow(hot-path): Arc refcount bump, not a deep copy
                buf.push(e.clone());
            }
        ";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn clone_in_nested_closure_still_denied() {
        let src = "
            // lint:hot-path
            fn hot(&self) { xs.iter().for_each(|x| { ys.push(x.to_vec()); }); }
        ";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn dangling_directive_is_reported() {
        let f = findings("fn above() {}\n// lint:hot-path\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, Pass::Annotation);
    }

    #[test]
    fn clone_ident_without_call_is_fine() {
        // `Clone` bounds / derive words must not trip the pass.
        let src = "
            // lint:hot-path
            fn hot<T: Clone>(x: &T) { takes_fn(T::clone); }
        ";
        assert!(findings(src).is_empty());
    }
}
