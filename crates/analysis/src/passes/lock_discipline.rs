//! Lock-discipline pass for the serving layer.
//!
//! Two rules, over a declared acquisition order:
//!
//! 1. **Ordering** — every file in scope that calls `.lock()` declares
//!    `// lint:lock-order: a < b < c` once; acquiring lock `b` while `a`
//!    is (possibly) held requires `a` to precede `b` in that order, and
//!    re-acquiring a held lock is always flagged (std `Mutex` is not
//!    reentrant). Locks not named in the declaration are flagged too, so
//!    the declaration can't silently go stale.
//! 2. **No lock across a socket write** — while any guard is live, calls
//!    to the wire-writing functions (`write_response`, `write_payload`,
//!    `write_all`, ...) are denied: a peer that stops reading would then
//!    hold the lock hostage for the whole send timeout, stalling every
//!    other connection that touches the registry.
//!
//! Guard liveness is a conservative lexical approximation (this is a
//! hand-rolled lint, not a borrow checker):
//!
//! * `if let` / `while let` / `match` on a `.lock()` result → the guard
//!   lives to the end of the block that follows;
//! * `let`-bound (incl. chains that consume the guard in-statement) →
//!   to the end of the enclosing block;
//! * un-bound chains → to the end of the statement.
//!
//! Over-approximation can only produce false *positives*; the fix is to
//! narrow the guard's scope (usually the right call anyway) or justify
//! with `// lint:allow(lock): <reason>`.

use crate::lexer::TokenKind;
use crate::report::{Finding, Pass};
use crate::source::SourceFile;

/// Functions that write to a connection's socket.
const SOCKET_WRITE_FNS: &[&str] = &[
    "write_response",
    "write_payload",
    "write_preamble",
    "write_all",
    "write_fmt",
];

#[derive(Debug)]
struct Guard {
    name: String,
    line: u32,
    /// Token index of the `lock` identifier.
    acq: usize,
    /// Guard considered live for tokens in `[acq, scope_end)`.
    scope_end: usize,
}

/// Run the pass over one file.
pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    let guards = find_guards(file);
    if guards.is_empty() {
        return;
    }
    let Some(order) = file.lock_order() else {
        report(
            file,
            1,
            "file acquires locks but declares no `// lint:lock-order:`".into(),
            out,
        );
        return;
    };
    let rank = |name: &str| order.iter().position(|n| n == name);
    for g in &guards {
        if rank(&g.name).is_none() {
            report(
                file,
                g.line,
                format!("lock `{}` is not in the declared lock-order", g.name),
                out,
            );
        }
    }
    // Ordering: an acquisition inside another guard's live scope must
    // rank strictly higher.
    for outer in &guards {
        for inner in &guards {
            if inner.acq <= outer.acq || inner.acq >= outer.scope_end {
                continue;
            }
            match (rank(&outer.name), rank(&inner.name)) {
                (Some(a), Some(b)) if a < b => {}
                (None, _) | (_, None) => {} // already reported above
                _ => report(
                    file,
                    inner.line,
                    format!(
                        "lock `{}` acquired while `{}` (line {}) may be held — violates declared order",
                        inner.name, outer.name, outer.line
                    ),
                    out,
                ),
            }
        }
    }
    // Socket writes under a lock.
    for (i, t) in file.tokens.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        if !SOCKET_WRITE_FNS.contains(&id)
            || !file.tokens.get(i + 1).is_some_and(|n| n.kind.is_punct('('))
        {
            continue;
        }
        for g in &guards {
            if i > g.acq && i < g.scope_end {
                report(
                    file,
                    t.line,
                    format!(
                        "socket write `{id}` while lock `{}` (line {}) may be held",
                        g.name, g.line
                    ),
                    out,
                );
                break;
            }
        }
    }
}

/// Every `<name>.lock()` acquisition in non-test code, with its
/// approximated live scope.
fn find_guards(file: &SourceFile) -> Vec<Guard> {
    let toks = &file.tokens;
    let mut guards = Vec::new();
    for i in 0..toks.len() {
        let is_lock_call = toks[i].kind.is_ident("lock")
            && !file.in_test(i)
            && i >= 2
            && toks[i - 1].kind.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.kind.is_punct('('));
        if !is_lock_call {
            continue;
        }
        let Some(name) = toks[i - 2].kind.ident() else {
            continue;
        };
        let scope_end = guard_scope(file, i);
        guards.push(Guard {
            name: name.to_string(),
            line: toks[i].line,
            acq: i,
            scope_end,
        });
    }
    guards
}

/// See the module docs for the three liveness cases.
fn guard_scope(file: &SourceFile, acq: usize) -> usize {
    let toks = &file.tokens;
    // Scan back to the nearest statement boundary, noting binding forms.
    let mut has_cond = false; // if / while / match
    let mut has_let = false;
    let mut j = acq;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokenKind::Punct(';' | '{' | '}') => break,
            TokenKind::Punct(')' | ']') => {
                // Jump over completed groups so a previous statement's
                // keywords (inside closure args etc.) don't leak in.
                let open = file.matching[j];
                if open != usize::MAX && open < j {
                    j = open;
                }
            }
            TokenKind::Ident(id) if id == "if" || id == "while" || id == "match" => {
                has_cond = true;
            }
            TokenKind::Ident(id) if id == "let" => has_let = true,
            _ => {}
        }
    }
    if has_cond {
        // Guard bound by the condition: live in the block that follows.
        let mut k = acq;
        while k < toks.len() {
            match &toks[k].kind {
                TokenKind::Punct('(' | '[') => {
                    let c = file.matching[k];
                    if c == usize::MAX {
                        return toks.len();
                    }
                    k = c + 1;
                    continue;
                }
                TokenKind::Punct('{') => {
                    let c = file.matching[k];
                    return if c == usize::MAX { toks.len() } else { c };
                }
                TokenKind::Punct(';') => return k,
                _ => {}
            }
            k += 1;
        }
        return toks.len();
    }
    if has_let {
        // Live to the end of the enclosing block.
        let mut depth = 0i64;
        let mut k = acq;
        while k < toks.len() {
            match &toks[k].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        return toks.len();
    }
    // Transient: to the end of the statement.
    let mut k = acq;
    while k < toks.len() {
        match &toks[k].kind {
            TokenKind::Punct('(' | '[' | '{') => {
                let c = file.matching[k];
                if c == usize::MAX {
                    return toks.len();
                }
                k = c + 1;
                continue;
            }
            TokenKind::Punct(';') => return k,
            TokenKind::Punct('}') => return k,
            _ => {}
        }
        k += 1;
    }
    toks.len()
}

fn report(file: &SourceFile, line: u32, what: String, out: &mut Vec<Finding>) {
    if file.allowed(Pass::Lock.key(), line) {
        return;
    }
    out.push(Finding {
        pass: Pass::Lock,
        path: file.path.clone(),
        line,
        message: what,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("x.rs", src);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn missing_declaration_flagged() {
        let f = findings("fn f(&self) { self.a.lock(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lock-order"));
    }

    #[test]
    fn ascending_order_is_clean() {
        let src = "
            // lint:lock-order: a < b
            fn f(&self) {
                let g = self.a.lock().unwrap();
                if let Ok(h) = self.b.lock() { use_it(h); }
            }
        ";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn descending_order_flagged() {
        let src = "
            // lint:lock-order: a < b
            fn f(&self) {
                let g = self.b.lock().unwrap();
                if let Ok(h) = self.a.lock() { use_it(h); }
            }
        ";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("violates declared order"));
    }

    #[test]
    fn reacquire_flagged_but_sequential_blocks_are_fine() {
        let src = "
            // lint:lock-order: a
            fn f(&self) {
                if let Ok(g) = self.a.lock() { touch(g); }
                if let Ok(g) = self.a.lock() { touch(g); }
            }
        ";
        assert!(findings(src).is_empty());
        let nested = "
            // lint:lock-order: a
            fn f(&self) {
                if let Ok(g) = self.a.lock() { let h = self.a.lock(); }
            }
        ";
        assert_eq!(findings(nested).len(), 1);
    }

    #[test]
    fn undeclared_lock_flagged() {
        let src = "// lint:lock-order: a\nfn f(&self) { self.mystery.lock(); }\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("mystery"));
    }

    #[test]
    fn socket_write_under_lock_flagged_transient_chain_is_fine() {
        let held = "
            // lint:lock-order: a
            fn f(&self) {
                let g = self.a.lock().unwrap();
                write_response(stream, &resp);
            }
        ";
        let f = findings(held);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("socket write"));
        let transient = "
            // lint:lock-order: a
            fn f(&self) {
                self.a.lock().ok().map(|g| g.count());
                write_response(stream, &resp);
            }
        ";
        assert!(findings(transient).is_empty());
    }
}
