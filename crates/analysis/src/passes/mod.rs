//! The four lint passes plus the annotation meta-checks.

pub mod codec_sym;
pub mod hot_path;
pub mod lock_discipline;
pub mod panic_free;

use crate::lexer::DirectiveKind;
use crate::report::{Finding, Pass};
use crate::source::SourceFile;

/// Which passes run on a file (hot-path and the annotation checks always
/// run — they are driven entirely by in-file annotations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassSet {
    /// Panic-freedom (serving/durability crates + CI tools).
    pub panic: bool,
    /// Codec symmetry (codec-bearing modules).
    pub codec: bool,
    /// Lock discipline (server connection/session plumbing).
    pub lock: bool,
}

/// Run every applicable pass over one parsed file.
pub fn run_all(file: &SourceFile, set: PassSet, out: &mut Vec<Finding>) {
    annotation_checks(file, out);
    hot_path::run(file, out);
    if set.panic {
        panic_free::run(file, out);
    }
    if set.codec {
        codec_sym::run(file, out);
    }
    if set.lock {
        lock_discipline::run(file, out);
    }
}

/// The annotations themselves are linted: malformed `lint:` comments,
/// unknown pass names, and `allow`s with no checked-in reason are all
/// findings — a suppression must never be cheaper than a fix.
fn annotation_checks(file: &SourceFile, out: &mut Vec<Finding>) {
    for d in &file.directives {
        match &d.kind {
            DirectiveKind::Malformed(text) => out.push(Finding {
                pass: Pass::Annotation,
                path: file.path.clone(),
                line: d.line,
                message: format!("malformed `lint:` directive: `lint:{text}`"),
            }),
            DirectiveKind::Allow { pass, reason } => {
                if Pass::from_key(pass).is_none() {
                    out.push(Finding {
                        pass: Pass::Annotation,
                        path: file.path.clone(),
                        line: d.line,
                        message: format!("`lint:allow({pass})` names an unknown pass"),
                    });
                }
                if reason.trim().is_empty() {
                    out.push(Finding {
                        pass: Pass::Annotation,
                        path: file.path.clone(),
                        line: d.line,
                        message: format!(
                            "`lint:allow({pass})` has no reason — write `: <why>` after it"
                        ),
                    });
                }
            }
            DirectiveKind::HotPath | DirectiveKind::LockOrder(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasonless_allow_and_unknown_pass_are_findings() {
        let f = SourceFile::parse(
            "x.rs",
            "// lint:allow(panic)\n// lint:allow(typo-pass): reason\n// lint:hotpath\n",
        );
        let mut out = Vec::new();
        run_all(&f, PassSet::default(), &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|x| x.pass == Pass::Annotation));
    }
}
