//! Panic-freedom pass.
//!
//! Session threads and the WAL must degrade through typed errors — a
//! panic in a session thread silently kills one query's stream, and a
//! panic mid-WAL-append can leave a torn tail the next recovery has to
//! repair (PR 6 review findings). So in the serving and durability
//! crates (plus the two CI tools, which escape clippy's strictest
//! settings), non-test code may not contain:
//!
//! * `.unwrap()` / `.expect(...)`
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * `assert!` / `assert_eq!` / `assert_ne!` (debug_assert* stays legal:
//!   compiled out in release builds)
//! * slice/array indexing `x[i]` (including range indexing `x[a..b]`) —
//!   use `get`/pattern matching, or justify with an allow
//!
//! Genuinely-unreachable sites carry
//! `// lint:allow(panic): <reason>` with the justification checked in.
//! `#[cfg(test)]` items and `#[test]` fns are exempt.

use crate::report::{Finding, Pass};
use crate::source::SourceFile;

const DENIED_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that can directly precede a `[` without it being an index
/// expression (array literals in `let`/`return`/... position, or the
/// `#[attr]` / `![...]` forms handled separately).
const NON_INDEX_PREV_KEYWORDS: &[&str] = &[
    "let", "return", "in", "if", "while", "match", "else", "move", "mut", "ref", "box", "as",
    "break", "const", "static", "type", "where", "dyn", "impl", "fn", "use", "pub",
];

/// Run the pass over one file.
pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        let line = toks[i].line;
        match &toks[i].kind {
            crate::lexer::TokenKind::Ident(id) => {
                let prev_dot = i > 0 && toks[i - 1].kind.is_punct('.');
                let next_paren = toks.get(i + 1).is_some_and(|t| t.kind.is_punct('('));
                let next_bang = toks.get(i + 1).is_some_and(|t| t.kind.is_punct('!'));
                if prev_dot && next_paren && (id == "unwrap" || id == "expect") {
                    report(file, line, format!(".{id}() can panic"), out);
                } else if next_bang && DENIED_MACROS.contains(&id.as_str()) {
                    // `x != y` lexes as Ident('x') Punct('!') Punct('=');
                    // macro names in DENIED_MACROS can't appear as plain
                    // expressions before `!=`, except via paths — a `::`
                    // prefix (std::assert!) still matches here, fine.
                    if !toks.get(i + 2).is_some_and(|t| t.kind.is_punct('=')) {
                        report(file, line, format!("{id}! can panic"), out);
                    }
                }
            }
            crate::lexer::TokenKind::Punct('[') if is_index_expr(file, i) => {
                report(
                    file,
                    line,
                    "slice/array indexing can panic (use get/patterns)".to_string(),
                    out,
                );
            }
            _ => {}
        }
    }
}

/// `[` is an index expression when the previous token ends an
/// expression: an identifier (that is not a keyword), a closing
/// bracket/paren, or `?`. Everything else — attributes `#[...]`, array
/// literals `[0u8; 4]` after `=`/`(`/`,`, types `&[u8]`, macro brackets
/// `vec![...]`, patterns after keywords — is not.
fn is_index_expr(file: &SourceFile, i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &file.tokens[p].kind) else {
        return false;
    };
    match prev {
        crate::lexer::TokenKind::Ident(id) => !NON_INDEX_PREV_KEYWORDS.contains(&id.as_str()),
        crate::lexer::TokenKind::Punct(')') | crate::lexer::TokenKind::Punct(']') => true,
        crate::lexer::TokenKind::Punct('?') => true,
        _ => false,
    }
}

fn report(file: &SourceFile, line: u32, what: String, out: &mut Vec<Finding>) {
    if file.allowed(Pass::Panic.key(), line) {
        return;
    }
    out.push(Finding {
        pass: Pass::Panic,
        path: file.path.clone(),
        line,
        message: what,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("x.rs", src);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn denies_unwrap_expect_and_panicking_macros() {
        let src = "
            fn f() {
                x.unwrap();
                y.expect(\"reason\");
                panic!(\"boom\");
                unreachable!();
                assert_eq!(a, b);
            }
        ";
        assert_eq!(findings(src).len(), 5);
    }

    #[test]
    fn debug_assert_and_ne_operator_are_fine() {
        let src = "fn f() { debug_assert!(x); if a != b { } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn indexing_flagged_but_types_attrs_literals_are_not() {
        let src = "
            #[derive(Debug)]
            fn f(s: &[u8], a: [u8; 4]) -> Vec<u8> {
                let lit = [0u8; 4];
                let v = vec![1, 2];
                let x = s[0];
                let y = buf[pos..pos + 4];
                let z = calls()[1];
            }
        ";
        assert_eq!(findings(src).len(), 3);
    }

    #[test]
    fn let_array_pattern_not_flagged() {
        assert!(findings("fn f() { let [a, b] = pair; }").is_empty());
    }

    #[test]
    fn test_code_exempt_and_allow_respected() {
        let src = "
            fn f() {
                // lint:allow(panic): index bounded by the loop above
                let x = s[0];
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }
        ";
        assert!(findings(src).is_empty());
    }
}
