//! Codec-symmetry pass.
//!
//! The v4→v5 snapshot bump taught the lesson structurally encoded here:
//! every serializer must have a deserializer it round-trips through, and
//! every on-disk format version must be both *written* by an encoder and
//! *dispatched on* by a decoder — a version constant bumped on the
//! encode side but missing a decode arm is exactly how a recovery path
//! rots.
//!
//! Checks, per file in scope (the codec modules of `greta-types`,
//! `greta-core`, and `greta-durability`):
//!
//! 1. Every free function `encode_<x>` has a sibling `decode_<x>` in the
//!    same file, and vice versa.
//! 2. Every `impl` block defining `fn encode` also defines `fn decode`
//!    (and vice versa) — trait impls and inherent codecs alike.
//! 3. Every `const` whose name contains `VERSION` is used by at least
//!    one encode-side function (name contains `encode`/`write`/`persist`
//!    /`save`) and one decode-side function (`decode`/`read`/`load`/
//!    `open`/`recover`/`parse`) — i.e. the version is both stamped and
//!    checked.

use crate::report::{Finding, Pass};
use crate::source::{impl_blocks, SourceFile};

const ENCODE_SIDE: &[&str] = &["encode", "write", "persist", "save", "store"];
const DECODE_SIDE: &[&str] = &["decode", "read", "load", "open", "recover", "parse"];

/// Run the pass over one file.
pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    pair_check(file, out);
    impl_pair_check(file, out);
    version_check(file, out);
}

/// Free-function `encode_<x>` / `decode_<x>` pairing.
fn pair_check(file: &SourceFile, out: &mut Vec<Finding>) {
    let non_test_fns: Vec<_> = file
        .fns
        .iter()
        .filter(|f| !file.in_test(f.fn_tok))
        .collect();
    for f in &non_test_fns {
        let (prefix, partner_prefix) = if f.name.starts_with("encode_") {
            ("encode_", "decode_")
        } else if f.name.starts_with("decode_") {
            ("decode_", "encode_")
        } else {
            continue;
        };
        let suffix = &f.name[prefix.len()..];
        let partner = format!("{partner_prefix}{suffix}");
        if !non_test_fns.iter().any(|g| g.name == partner) {
            report(
                file,
                f.line,
                format!("`{}` has no paired `{partner}` in this file", f.name),
                out,
            );
        }
    }
}

/// `fn encode` / `fn decode` pairing inside each impl/trait block.
fn impl_pair_check(file: &SourceFile, out: &mut Vec<Finding>) {
    for (line, (start, end)) in impl_blocks(file) {
        if file.in_test(start) {
            continue;
        }
        // Only methods directly owned by this block (innermost): a
        // nested closure can't define fns, so containment is enough as
        // long as we skip fns owned by *inner* impl blocks (none occur).
        let has = |name: &str| {
            file.fns
                .iter()
                .any(|f| f.fn_tok >= start && f.fn_tok < end && f.name == name)
        };
        match (has("encode"), has("decode")) {
            (true, false) => report(
                file,
                line,
                "impl defines `fn encode` without a paired `fn decode`".into(),
                out,
            ),
            (false, true) => report(
                file,
                line,
                "impl defines `fn decode` without a paired `fn encode`".into(),
                out,
            ),
            _ => {}
        }
    }
}

/// Version constants must appear on both sides of the codec.
fn version_check(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    // `const <NAME>` where NAME contains VERSION.
    let mut consts: Vec<(String, u32)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind.is_ident("const") && !file.in_test(i) {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.kind.ident()) {
                if name.contains("VERSION") {
                    consts.push((name.to_string(), toks[i].line));
                }
            }
        }
    }
    for (name, line) in consts {
        let mut encode_use = false;
        let mut decode_use = false;
        for (i, t) in toks.iter().enumerate() {
            if !t.kind.is_ident(&name) || file.in_test(i) {
                continue;
            }
            // Skip the declaration itself.
            if i > 0 && toks[i - 1].kind.is_ident("const") {
                continue;
            }
            for f in file.enclosing_fns(i) {
                let n = f.name.as_str();
                if ENCODE_SIDE.iter().any(|k| n.contains(k)) {
                    encode_use = true;
                }
                if DECODE_SIDE.iter().any(|k| n.contains(k)) {
                    decode_use = true;
                }
            }
        }
        if !encode_use {
            report(
                file,
                line,
                format!("version constant `{name}` is never written by an encode-side function"),
                out,
            );
        }
        if !decode_use {
            report(
                file,
                line,
                format!(
                    "version constant `{name}` is never dispatched on by a decode-side function"
                ),
                out,
            );
        }
    }
}

fn report(file: &SourceFile, line: u32, what: String, out: &mut Vec<Finding>) {
    if file.allowed(Pass::Codec.key(), line) {
        return;
    }
    out.push(Finding {
        pass: Pass::Codec,
        path: file.path.clone(),
        line,
        message: what,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("x.rs", src);
        let mut out = Vec::new();
        run(&f, &mut out);
        out
    }

    #[test]
    fn unpaired_free_fn_flagged() {
        let src = "fn encode_key(k: &K) {}\nfn decode_key(r: &mut R) {}\nfn encode_orphan() {}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("encode_orphan"));
    }

    #[test]
    fn unpaired_impl_method_flagged() {
        let src = "impl A { fn encode(&self) {} fn decode() {} }\nimpl B { fn encode(&self) {} }\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("without a paired `fn decode`"));
    }

    #[test]
    fn version_constant_must_be_written_and_dispatched() {
        let good = "
            const VERSION: u8 = 2;
            fn encode(&self) { out.push(VERSION); }
            fn decode() { if data[0] != VERSION { } }
        ";
        assert!(findings(good).is_empty());
        let write_only = "
            const SNAP_VERSION: u8 = 2;
            fn encode(&self) { out.push(SNAP_VERSION); }
            fn decode() {}
        ";
        let f = findings(write_only);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never dispatched"));
    }

    #[test]
    fn allow_suppresses() {
        let src =
            "// lint:allow(codec): decoder lives in the recover module\nfn encode_tail() {}\n";
        assert!(findings(src).is_empty());
    }
}
