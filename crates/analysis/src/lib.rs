//! # greta-analysis
//!
//! `greta-lint`: the workspace invariant analyzer. Four static passes
//! protect the executor's hardest-won properties structurally, so they
//! survive refactors that example-driven tests and the ±15 % bench band
//! would miss:
//!
//! | pass | invariant | scope |
//! |------|-----------|-------|
//! | `hot-path` | zero-copy event plane stays allocation-free (PR 3's −41 %) | `// lint:hot-path` regions |
//! | `panic` | serving + durability degrade via typed errors, never panics | `crates/server`, `crates/durability`, CI tools |
//! | `codec` | every encoder has a decoder; every format version is stamped *and* dispatched | codec modules |
//! | `lock` | declared lock order; no lock held across a socket write | `server.rs`, `session.rs` |
//!
//! Everything is hand-rolled on a small Rust lexer ([`lexer`]) — the
//! workspace is offline, so no syn/proc-macro stack. The passes are
//! lexical and conservative: they can flag code that is actually fine
//! (then you narrow the code or add a justified
//! `// lint:allow(<pass>): <reason>`), but a clean run means the
//! invariant holds *as written* everywhere in scope.
//!
//! The runtime twin of the `codec` pass lives in
//! `tests/codec_roundtrip.rs` (proptest round-trips), and the barrier
//! protocol these passes guard is model-checked in
//! `greta_core::protocol_model`.
//!
//! Entry points: [`workspace::lint_workspace`] for the real tree,
//! [`workspace::lint_source`] for one buffer (what the CI red-path
//! self-test injects violations into). The CLI is `tools/greta_lint.rs`
//! (`cargo run -p greta-analysis --bin greta_lint`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;
pub mod workspace;

pub use report::{Finding, Pass};
