//! A minimal hand-rolled Rust lexer — just enough structure for the lint
//! passes: identifiers, punctuation, literals, and line numbers, with
//! comments set aside as [`Directive`]s when they carry `lint:` markers.
//!
//! The lexer understands the token-level syntax that would otherwise
//! confuse a regex-based scan: line and (nested) block comments, string
//! and raw-string literals, char literals vs. lifetimes, and numeric
//! literals. It deliberately does **not** parse Rust — the passes layer
//! item/region structure on top via brace tracking (see
//! [`crate::source`]).

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token classes the lint passes care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `clone`, `Vec`, ...), including
    /// raw identifiers with the `r#` prefix stripped.
    Ident(String),
    /// A lifetime such as `'a` (kept distinct so `'a'` char literals and
    /// `&'a str` types never interact with identifier matching).
    Lifetime,
    /// Any literal: string, raw string, byte string, char, or number.
    /// The payload is dropped — no pass inspects literal contents.
    Literal,
    /// A single punctuation character (`.`, `(`, `[`, `!`, `#`, ...).
    /// Multi-character operators arrive as consecutive tokens.
    Punct(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is exactly the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, TokenKind::Ident(i) if i == s)
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// A `lint:` marker comment, attached to the line it appeared on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line of the comment.
    pub line: u32,
    /// Parsed form.
    pub kind: DirectiveKind,
}

/// The annotation grammar (documented in `ARCHITECTURE.md § Invariants`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// lint:hot-path` — the next `fn` item's body is a hot region:
    /// the allocation pass denies allocating calls inside it.
    HotPath,
    /// `// lint:allow(<pass>): <reason>` — suppress findings of `pass`
    /// on this line and the next. `reason` must be non-empty; the lint
    /// itself enforces that.
    Allow {
        /// Pass name: `hot-path`, `panic`, `codec`, or `lock`.
        pass: String,
        /// Checked-in justification (may be empty — then it's a finding).
        reason: String,
    },
    /// `// lint:lock-order: a < b < c` — declares the file's lock
    /// acquisition order for the lock-discipline pass.
    LockOrder(Vec<String>),
    /// A `lint:` comment that matched none of the known forms — always
    /// reported, so a typo can't silently disarm a suppression.
    Malformed(String),
}

/// Lexer output: the token stream plus any `lint:` directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All `lint:` marker comments in source order.
    pub directives: Vec<Directive>,
}

/// Lex `src`. Never fails: unterminated constructs consume to the end of
/// input (the real compiler rejects such files long before the lint runs).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_directive(&src[start..i], line, &mut out.directives);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments, tracking newlines.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = skip_string(b, i, &mut line);
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = skip_raw_or_byte(b, i, &mut line);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_lifetime(b, i) {
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                    i = skip_char_literal(b, i);
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers, incl. suffixes and separators (`1_000u64`,
                // `0xFF`, `2.5e-3`). `1.foo()` never appears in this
                // codebase's style, so consuming `.` digits is safe.
                while i < b.len()
                    && (b[i] == b'_'
                        || b[i] == b'.'
                        || b[i].is_ascii_alphanumeric()
                        || ((b[i] == b'+' || b[i] == b'-')
                            && matches!(b.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))))
                {
                    // Stop at `..` (range) and at `.method`.
                    if b[i] == b'.'
                        && (b.get(i + 1) == Some(&b'.')
                            || b.get(i + 1)
                                .is_some_and(|n| n.is_ascii_alphabetic() || *n == b'_'))
                    {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` — but not the identifiers
/// `r` / `b` themselves.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    b.get(j) == Some(&b'"') && j > i
}

fn skip_raw_or_byte(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if !raw {
        return skip_string(b, i, line);
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && b.get(j) == Some(&b'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skip a `"..."` string starting at the opening quote; handles escapes
/// and embedded newlines.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// `'a` (lifetime) iff the quote is followed by ident chars **not**
/// closed by another quote: `'a'` is a char literal, `'a,` a lifetime.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if first == b'\\' || !(first == b'_' || first.is_ascii_alphabetic()) {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Parse `// lint:...` comments into [`Directive`]s. Doc comments and
/// ordinary comments that merely *mention* `lint:` in prose (after other
/// words) are ignored: the marker must be the first word of the comment.
fn scan_directive(comment: &str, line: u32, out: &mut Vec<Directive>) {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let kind = parse_directive(rest);
    out.push(Directive { line, kind });
}

fn parse_directive(rest: &str) -> DirectiveKind {
    let rest = rest.trim();
    if rest == "hot-path" {
        return DirectiveKind::HotPath;
    }
    if let Some(args) = rest.strip_prefix("allow(") {
        if let Some(close) = args.find(')') {
            let pass = args[..close].trim().to_string();
            let tail = args[close + 1..].trim();
            let reason = tail
                .strip_prefix(':')
                .map(str::trim)
                .unwrap_or("")
                .to_string();
            return DirectiveKind::Allow { pass, reason };
        }
    }
    if let Some(order) = rest.strip_prefix("lock-order:") {
        let names: Vec<String> = order
            .split('<')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if !names.is_empty() {
            return DirectiveKind::LockOrder(names);
        }
    }
    DirectiveKind::Malformed(rest.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn a() {\n  b.clone();\n}\n");
        let lines: Vec<u32> = l
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(|_| t.line))
            .collect();
        assert_eq!(
            idents("fn a() {\n  b.clone();\n}\n"),
            ["fn", "a", "b", "clone"]
        );
        assert_eq!(lines, [1, 1, 2, 2]);
    }

    #[test]
    fn strings_comments_and_chars_hide_their_contents() {
        let src = r#"
            let s = "clone() unwrap()"; // clone() in a comment
            /* unwrap() in /* nested */ block */
            let c = '"'; let l: &'static str = x;
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"clone".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(
            !ids.contains(&"static".to_string()),
            "lifetime leaked: {ids:?}"
        );
    }

    #[test]
    fn raw_strings() {
        let src = r###"let s = r#"a "quoted" unwrap()"# ; let t = b"bytes";"###;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn directives_parse() {
        let src = "
            // lint:hot-path
            fn f() {}
            x.clone(); // lint:allow(hot-path): Arc refcount bump
            // lint:lock-order: sessions < drained_tail < join
            // lint:bogus
        ";
        let l = lex(src);
        assert_eq!(l.directives.len(), 4);
        assert_eq!(l.directives[0].kind, DirectiveKind::HotPath);
        assert_eq!(
            l.directives[1].kind,
            DirectiveKind::Allow {
                pass: "hot-path".into(),
                reason: "Arc refcount bump".into()
            }
        );
        assert_eq!(
            l.directives[2].kind,
            DirectiveKind::LockOrder(vec![
                "sessions".into(),
                "drained_tail".into(),
                "join".into()
            ])
        );
        assert!(matches!(l.directives[3].kind, DirectiveKind::Malformed(_)));
    }

    #[test]
    fn numeric_literals_do_not_eat_methods_or_ranges() {
        assert_eq!(idents("0..buf.len()"), ["buf", "len"]);
        assert_eq!(idents("1.0e-3.max(x)"), ["max", "x"]);
        assert_eq!(idents("1_000u64.to_string()"), ["to_string"]);
    }
}
