//! Workspace scan: which files exist, which passes apply to each, and
//! the one-call entry point the `greta_lint` binary (and its red-path
//! self-test) drive.

use crate::passes::{run_all, PassSet};
use crate::report::Finding;
use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// First-party directories scanned (vendored crates.io stand-ins under
/// `vendor/` are exempt — they are held to compile-compatibility, not to
/// GRETA's invariants).
const SCAN_ROOTS: &[&str] = &["crates", "src", "tools", "examples", "tests"];

/// Panic-freedom scope: serving + durability crates, plus the two CI
/// tools that escape clippy's strictest settings.
const PANIC_SCOPE: &[&str] = &[
    "crates/server/src/",
    "crates/durability/src/",
    "tools/bench_gate.rs",
    "tools/load_client.rs",
];

/// Codec-symmetry scope: every module that defines an on-disk or wire
/// format.
const CODEC_SCOPE: &[&str] = &[
    "crates/types/src/codec.rs",
    "crates/core/src/",
    "crates/durability/src/",
    "crates/server/src/protocol.rs",
];

/// Lock-discipline scope: the server's connection/session plumbing.
const LOCK_SCOPE: &[&str] = &[
    "crates/server/src/server.rs",
    "crates/server/src/session.rs",
];

/// The passes that apply to a repo-relative path.
pub fn passes_for(rel: &str) -> PassSet {
    let hit = |scope: &[&str]| scope.iter().any(|p| rel.starts_with(p));
    PassSet {
        panic: hit(PANIC_SCOPE),
        codec: hit(CODEC_SCOPE),
        lock: hit(LOCK_SCOPE),
    }
}

/// All first-party `.rs` files under `root`, repo-relative, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect_rs(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<String> = out
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            // `target/` never nests under the scan roots; no excludes
            // needed beyond the root whitelist.
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's content (the unit the self-test injects violations
/// into).
pub fn lint_source(rel_path: &str, content: &str) -> Vec<Finding> {
    let file = SourceFile::parse(rel_path, content);
    let mut out = Vec::new();
    run_all(&file, passes_for(rel_path), &mut out);
    out
}

/// Lint the whole workspace under `root`. Findings are sorted by path
/// then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_files(root)? {
        let content = fs::read_to_string(root.join(&rel))?;
        findings.extend(lint_source(&rel, &content));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_resolve() {
        assert!(passes_for("crates/server/src/session.rs").panic);
        assert!(passes_for("crates/server/src/session.rs").lock);
        assert!(!passes_for("crates/server/src/http.rs").lock);
        assert!(passes_for("crates/durability/src/wal.rs").codec);
        assert!(passes_for("tools/bench_gate.rs").panic);
        assert!(!passes_for("crates/core/src/executor.rs").panic);
        assert!(passes_for("crates/core/src/executor.rs").codec);
        assert!(!passes_for("examples/quickstart.rs").panic);
    }

    #[test]
    fn lint_source_end_to_end() {
        let f = lint_source("crates/server/src/session.rs", "fn f() { x.unwrap(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unwrap"));
    }
}
