//! Shared machinery for the two-step baselines: stream partitioning, the
//! explicit match graph (events + predecessor pointers, as kept by SASE
//! stacks / the CET graph), per-trend aggregation, and the common result
//! shape.
//!
//! The *match semantics* (adjacency, predicates, Definition-5 invalidation,
//! windows) is shared with the GRETA engine by construction — what differs
//! between GRETA and the baselines is purely **how aggregates are obtained**:
//! GRETA propagates them along edges (never enumerating trends), the
//! baselines construct trends first (paper Fig. 1).

use greta_core::agg::{AggLayout, AggState};
use greta_core::grouping::{KeyExtractor, PartitionKey};
use greta_core::negation::{
    end_event_valid_at_close, insertion_dropped, predecessor_valid, DepMode, Dependency,
    InvalidationLog,
};
use greta_core::results::{render_aggregates, WindowResult};
use greta_core::window::{window_close_time, window_start_time, windows_of, WindowId};
use greta_query::compile::AltPlan;
use greta_query::{CompiledQuery, StateId};
use greta_types::{Event, SchemaRegistry, Time, TypeId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The stream split into partitions (GROUP-BY + equivalence attributes,
/// §6). Broadcast-typed events (negative-pattern types with sub-keys) are
/// replicated into every matching partition.
#[derive(Debug, Clone)]
pub struct PartitionedStream {
    /// `(partition key, events of that partition in arrival order)`.
    pub partitions: Vec<(PartitionKey, Vec<Event>)>,
}

impl PartitionedStream {
    /// Partition a batch. Unlike the streaming engine, this batch splitter
    /// sees all keys up front, so broadcast events reach every matching
    /// partition regardless of creation order.
    pub fn build(query: &CompiledQuery, registry: &SchemaRegistry, events: &[Event]) -> Self {
        let extractor = KeyExtractor::new(query, registry);
        let mut root_types: HashSet<TypeId> = HashSet::new();
        for alt in &query.alternatives {
            for (_, t) in &alt.graphs[0].state_types {
                root_types.insert(*t);
            }
        }
        let is_partition_owner = |t: TypeId| root_types.contains(&t) && extractor.has_full_key(t);

        // Pass 1: discover partition keys.
        let mut keys: Vec<PartitionKey> = Vec::new();
        let mut seen: HashSet<PartitionKey> = HashSet::new();
        for e in events {
            if is_partition_owner(e.type_id) {
                let k = extractor.key_of(e);
                if seen.insert(k.clone()) {
                    keys.push(k);
                }
            }
        }
        // Pass 2: route.
        let mut parts: Vec<(PartitionKey, Vec<Event>)> =
            keys.iter().map(|k| (k.clone(), Vec::new())).collect();
        let index: HashMap<PartitionKey, usize> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i))
            .collect();
        for e in events {
            let k = extractor.key_of(e);
            if is_partition_owner(e.type_id) {
                parts[index[&k]].1.push(e.clone());
            } else {
                for (pk, evs) in parts.iter_mut() {
                    if k.matches(pk) {
                        evs.push(e.clone());
                    }
                }
            }
        }
        PartitionedStream { partitions: parts }
    }
}

/// A vertex of the explicit match graph.
#[derive(Debug, Clone)]
pub struct MVertex {
    /// Index into the partition's event list.
    pub ev: usize,
    /// Template state.
    pub state: StateId,
    /// Graph (0 = positive root) within the alternative.
    pub graph: usize,
    /// Begins trends.
    pub is_start: bool,
    /// May finish trends.
    pub is_end: bool,
    /// Latest trend start time ending here (negation bookkeeping).
    pub latest_start: Time,
}

/// Explicit match graph over one partition for one alternative: events plus
/// predecessor/successor pointers — the structure SASE keeps in its stacks
/// and CET keeps as its graph.
pub struct MatchGraph<'a> {
    /// The alternative this graph instantiates.
    pub plan: &'a AltPlan,
    /// Partition events (arrival order; in-order by time).
    pub events: &'a [Event],
    /// Vertices.
    pub vertices: Vec<MVertex>,
    /// Predecessor pointers.
    pub preds: Vec<Vec<usize>>,
    /// Successor pointers (forward enumeration).
    pub succs: Vec<Vec<usize>>,
    logs: Vec<InvalidationLog>,
    deps: Vec<Vec<Dependency>>,
}

impl<'a> MatchGraph<'a> {
    /// Build the graph (time O(n²·states), the same adjacency relation the
    /// GRETA runtime uses).
    pub fn build(plan: &'a AltPlan, events: &'a [Event], within: u64) -> MatchGraph<'a> {
        let n_graphs = plan.graphs.len();
        let deps: Vec<Vec<Dependency>> = plan
            .graphs
            .iter()
            .map(|spec| {
                plan.graphs
                    .iter()
                    .filter(|g| g.parent == Some(spec.id))
                    .map(|g| Dependency {
                        child: g.id,
                        mode: DepMode::of(g),
                    })
                    .collect()
            })
            .collect();
        let mut g = MatchGraph {
            plan,
            events,
            vertices: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            logs: vec![InvalidationLog::default(); n_graphs],
            deps,
        };
        // index: per (graph, state) the vertex ids, in arrival order
        let mut by_state: HashMap<(usize, StateId), Vec<usize>> = HashMap::new();
        for (ei, e) in events.iter().enumerate() {
            for (gi, spec) in plan.graphs.iter().enumerate() {
                let dropped = {
                    let logs = &g.logs;
                    insertion_dropped(
                        &g.deps[gi],
                        |id: greta_query::compile::GraphId| logs.get(id.0 as usize),
                        e.time,
                    )
                };
                if dropped {
                    continue;
                }
                let states: Vec<StateId> = spec
                    .state_types
                    .iter()
                    .filter(|(_, t)| *t == e.type_id)
                    .map(|(s, _)| *s)
                    .collect();
                for state in states {
                    if !plan
                        .predicates
                        .vertex_preds(state)
                        .all(|p| p.expr.eval_bool(None, e))
                    {
                        continue;
                    }
                    let is_start = spec.template.is_start(state);
                    let is_end = spec.template.is_end(state);
                    let mut preds: Vec<usize> = Vec::new();
                    for p_state in spec.template.predecessors(state) {
                        let Some(cands) = by_state.get(&(gi, p_state)) else {
                            continue;
                        };
                        for &vid in cands {
                            let pv = &g.vertices[vid];
                            let pe = &events[pv.ev];
                            if pe.time >= e.time || pe.time.ticks() + within <= e.time.ticks() {
                                continue;
                            }
                            let valid = {
                                let logs = &g.logs;
                                predecessor_valid(
                                    &g.deps[gi],
                                    |id: greta_query::compile::GraphId| logs.get(id.0 as usize),
                                    p_state,
                                    state,
                                    pe.time,
                                    e.time,
                                )
                            };
                            if !valid {
                                continue;
                            }
                            if !plan
                                .predicates
                                .edge_preds(p_state, state)
                                .all(|ep| ep.expr.eval_bool(Some(pe), e))
                            {
                                continue;
                            }
                            preds.push(vid);
                        }
                    }
                    if !is_start && preds.is_empty() {
                        continue;
                    }
                    let mut latest_start = if is_start { e.time } else { Time::ZERO };
                    for &p in &preds {
                        latest_start = latest_start.max(g.vertices[p].latest_start);
                    }
                    let vid = g.vertices.len();
                    g.vertices.push(MVertex {
                        ev: ei,
                        state,
                        graph: gi,
                        is_start,
                        is_end,
                        latest_start,
                    });
                    g.succs.push(Vec::new());
                    for &p in &preds {
                        g.succs[p].push(vid);
                    }
                    g.preds.push(preds);
                    by_state.entry((gi, state)).or_default().push(vid);
                    if is_end && gi != 0 {
                        g.logs[gi].push(e.time, latest_start);
                    }
                }
            }
        }
        g
    }

    /// Time of a vertex's event.
    pub fn time(&self, v: usize) -> Time {
        self.events[self.vertices[v].ev].time
    }

    /// True when an END vertex of the root graph still counts at a window
    /// closing at `close_time` (Case-2 negation, Fig. 8(a)).
    pub fn end_valid_at(&self, v: usize, close_time: Time) -> bool {
        let logs = &self.logs;
        end_event_valid_at_close(
            &self.deps[0],
            |id: greta_query::compile::GraphId| logs.get(id.0 as usize),
            self.time(v),
            close_time,
        )
    }

    /// Bytes of the pointer graph (events + pointers), the state SASE keeps.
    pub fn graph_bytes(&self) -> usize {
        let ptrs: usize = self
            .preds
            .iter()
            .zip(&self.succs)
            .map(|(p, s)| (p.len() + s.len()) * std::mem::size_of::<usize>())
            .sum();
        self.vertices.len() * std::mem::size_of::<MVertex>()
            + ptrs
            + self.events.iter().map(Event::heap_size).sum::<usize>()
    }

    /// Enumerate every trend of the **root** graph whose events all lie in
    /// window `wid`, invoking `f(path)` per trend, in DFS order. Returns
    /// `false` if `budget` (max trends, `u64::MAX` = unlimited) was
    /// exhausted midway.
    pub fn for_each_trend(
        &self,
        wid: WindowId,
        window: &greta_query::WindowSpec,
        budget: &mut u64,
        f: &mut impl FnMut(&[usize]),
    ) -> bool {
        let ws = window_start_time(wid, window);
        let we = window_close_time(wid, window);
        let close = we;
        let mut path: Vec<usize> = Vec::new();
        for v in 0..self.vertices.len() {
            let mv = &self.vertices[v];
            if mv.graph != 0 || !mv.is_start {
                continue;
            }
            let t = self.time(v);
            if t < ws || t >= we {
                continue;
            }
            path.push(v);
            if !self.dfs(v, ws, we, close, &mut path, budget, f) {
                return false;
            }
            path.pop();
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        v: usize,
        ws: Time,
        we: Time,
        close: Time,
        path: &mut Vec<usize>,
        budget: &mut u64,
        f: &mut impl FnMut(&[usize]),
    ) -> bool {
        if self.vertices[v].is_end && self.end_valid_at(v, close) {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            f(path);
        }
        for &s in &self.succs[v] {
            let t = self.time(s);
            if t < ws || t >= we {
                continue;
            }
            path.push(s);
            if !self.dfs(s, ws, we, close, path, budget, f) {
                return false;
            }
            path.pop();
        }
        true
    }
}

/// Fold one materialized trend into an aggregate state (the "second step"
/// of a two-step engine: aggregation after construction).
pub fn aggregate_trend(
    acc: &mut AggState<f64>,
    events: &[Event],
    vertices: &[MVertex],
    path: &[usize],
    layout: &AggLayout,
) {
    acc.count += 1.0;
    for &v in path {
        let e = &events[vertices[v].ev];
        for (i, t) in layout.count_targets.iter().enumerate() {
            if *t == e.type_id {
                acc.counts_e[i] += 1.0;
            }
        }
        for (i, (t, a)) in layout.min_targets.iter().enumerate() {
            if *t == e.type_id {
                acc.mins[i] = acc.mins[i].min(e.attr(*a).as_f64());
            }
        }
        for (i, (t, a)) in layout.max_targets.iter().enumerate() {
            if *t == e.type_id {
                acc.maxs[i] = acc.maxs[i].max(e.attr(*a).as_f64());
            }
        }
        for (i, (t, a)) in layout.sum_targets.iter().enumerate() {
            if *t == e.type_id {
                acc.sums[i] += e.attr(*a).as_f64();
            }
        }
    }
}

/// Cumulative per-trend statistics (one trend, not a multiset of trends):
/// occurrence counts, extrema and sums of the tracked targets. This is what
/// a CET node carries so that aggregation can happen upon construction.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendStats {
    /// `COUNT(E)` occurrences along this trend, per layout slot.
    pub counts_e: Box<[f64]>,
    /// Minima per layout slot.
    pub mins: Box<[f64]>,
    /// Maxima per layout slot.
    pub maxs: Box<[f64]>,
    /// Sums per layout slot.
    pub sums: Box<[f64]>,
}

impl TrendStats {
    /// Stats of a single-event trend.
    pub fn single(e: &Event, layout: &AggLayout) -> TrendStats {
        let mut s = TrendStats {
            counts_e: vec![0.0; layout.count_targets.len()].into_boxed_slice(),
            mins: vec![f64::INFINITY; layout.min_targets.len()].into_boxed_slice(),
            maxs: vec![f64::NEG_INFINITY; layout.max_targets.len()].into_boxed_slice(),
            sums: vec![0.0; layout.sum_targets.len()].into_boxed_slice(),
        };
        s.apply(e, layout);
        s
    }

    /// Stats of this trend extended by one more event.
    pub fn extend(&self, e: &Event, layout: &AggLayout) -> TrendStats {
        let mut s = self.clone();
        s.apply(e, layout);
        s
    }

    fn apply(&mut self, e: &Event, layout: &AggLayout) {
        for (i, t) in layout.count_targets.iter().enumerate() {
            if *t == e.type_id {
                self.counts_e[i] += 1.0;
            }
        }
        for (i, (t, a)) in layout.min_targets.iter().enumerate() {
            if *t == e.type_id {
                self.mins[i] = self.mins[i].min(e.attr(*a).as_f64());
            }
        }
        for (i, (t, a)) in layout.max_targets.iter().enumerate() {
            if *t == e.type_id {
                self.maxs[i] = self.maxs[i].max(e.attr(*a).as_f64());
            }
        }
        for (i, (t, a)) in layout.sum_targets.iter().enumerate() {
            if *t == e.type_id {
                self.sums[i] += e.attr(*a).as_f64();
            }
        }
    }

    /// Fold this completed trend into a multiset aggregate.
    pub fn fold_into(&self, acc: &mut AggState<f64>) {
        acc.count += 1.0;
        for (a, b) in acc.counts_e.iter_mut().zip(self.counts_e.iter()) {
            *a += *b;
        }
        for (a, b) in acc.mins.iter_mut().zip(self.mins.iter()) {
            *a = a.min(*b);
        }
        for (a, b) in acc.maxs.iter_mut().zip(self.maxs.iter()) {
            *a = a.max(*b);
        }
        for (a, b) in acc.sums.iter_mut().zip(self.sums.iter()) {
            *a += *b;
        }
    }
}

/// Outcome of a two-step run.
#[derive(Debug, Clone)]
pub struct TwoStepRun {
    /// Result rows (empty groups omitted), sorted by `(window, group)`.
    pub rows: Vec<WindowResult<f64>>,
    /// False when the trend budget was exhausted ("fails to terminate" in
    /// the paper's experiments).
    pub completed: bool,
    /// Trends constructed.
    pub trends: u64,
    /// Peak bytes of engine state (match graph + per-strategy extras).
    pub peak_bytes: usize,
}

/// Shared driver for trend-constructing engines. `extra_bytes(graph,
/// trends, sum_len)` models the strategy-specific storage: SASE keeps one
/// path, CET all shared nodes, Flink all materialized sequences.
pub fn run_two_step(
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    events: &[Event],
    budget: u64,
    extra_bytes: impl Fn(&MatchGraph<'_>, u64, u64) -> usize,
    length_stratified: bool,
) -> TwoStepRun {
    let layout = AggLayout::new(&query.aggregates);
    let n_group = query.group_by.len();
    let parts = PartitionedStream::build(query, registry, events);
    let mut results: HashMap<(WindowId, PartitionKey), AggState<f64>> = HashMap::new();
    let mut budget_left = budget;
    let mut trends: u64 = 0;
    let mut peak = 0usize;
    let mut completed = true;

    'outer: for (key, evs) in &parts.partitions {
        let group = key.group_prefix(n_group);
        let mut wids: BTreeSet<WindowId> = BTreeSet::new();
        for e in evs {
            wids.extend(windows_of(e.time, &query.window));
        }
        for plan in &query.alternatives {
            let graph = MatchGraph::build(plan, evs, query.window.within);
            for &wid in &wids {
                let acc = results
                    .entry((wid, group.clone()))
                    .or_insert_with(|| AggState::zero(&layout));
                let mut local_trends = 0u64;
                let mut sum_len = 0u64;
                let ok = if length_stratified {
                    enumerate_length_stratified(
                        &graph,
                        wid,
                        &query.window,
                        &mut budget_left,
                        &mut |path| {
                            local_trends += 1;
                            sum_len += path.len() as u64;
                            aggregate_trend(acc, evs, &graph.vertices, path, &layout);
                        },
                    )
                } else {
                    graph.for_each_trend(wid, &query.window, &mut budget_left, &mut |path| {
                        local_trends += 1;
                        sum_len += path.len() as u64;
                        aggregate_trend(acc, evs, &graph.vertices, path, &layout);
                    })
                };
                trends += local_trends;
                peak = peak.max(graph.graph_bytes() + extra_bytes(&graph, local_trends, sum_len));
                if !ok {
                    completed = false;
                    break 'outer;
                }
            }
        }
    }

    let mut rows: Vec<WindowResult<f64>> = results
        .into_iter()
        .filter(|(_, st)| st.count != 0.0)
        .map(|((wid, group), st)| WindowResult {
            window: wid,
            group,
            values: render_aggregates(&st, &query.aggregates, &layout),
        })
        .collect();
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    TwoStepRun {
        rows,
        completed,
        trends,
        peak_bytes: peak,
    }
}

/// Flink-style enumeration: one pass per trend length `l = 1..=L`
/// (flattened fixed-length queries), each re-walking the graph with a depth
/// bound. L is discovered by running until a length yields no trends.
pub fn enumerate_length_stratified(
    graph: &MatchGraph<'_>,
    wid: WindowId,
    window: &greta_query::WindowSpec,
    budget: &mut u64,
    f: &mut impl FnMut(&[usize]),
) -> bool {
    let mut l = 1usize;
    loop {
        let mut found = false;
        let mut any_path_of_len = false;
        let ws = window_start_time(wid, window);
        let we = window_close_time(wid, window);
        let mut path = Vec::new();
        for v in 0..graph.vertices.len() {
            let mv = &graph.vertices[v];
            if mv.graph != 0 || !mv.is_start {
                continue;
            }
            let t = graph.time(v);
            if t < ws || t >= we {
                continue;
            }
            path.push(v);
            if !dfs_exact(
                graph,
                v,
                l,
                ws,
                we,
                &mut path,
                budget,
                &mut found,
                &mut any_path_of_len,
                f,
            ) {
                return false;
            }
            path.pop();
        }
        let _ = found;
        if !any_path_of_len {
            return true; // no paths of this length at all ⇒ L reached
        }
        l += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_exact(
    graph: &MatchGraph<'_>,
    v: usize,
    l: usize,
    ws: Time,
    we: Time,
    path: &mut Vec<usize>,
    budget: &mut u64,
    found: &mut bool,
    any_path: &mut bool,
    f: &mut impl FnMut(&[usize]),
) -> bool {
    if path.len() == l {
        *any_path = true;
        if graph.vertices[v].is_end && graph.end_valid_at(v, we) {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            *found = true;
            f(path);
        }
        return true;
    }
    for &s in &graph.succs[v] {
        let t = graph.time(s);
        if t < ws || t >= we {
            continue;
        }
        path.push(s);
        if !dfs_exact(graph, s, l, ws, we, path, budget, found, any_path, f) {
            return false;
        }
        path.pop();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{EventBuilder, SchemaRegistry};

    fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["attr"]).unwrap();
        reg.register_type("B", &["attr"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let evs: Vec<Event> = [("A", 1u64), ("B", 2), ("A", 3), ("A", 4), ("B", 7)]
            .iter()
            .map(|(t, ts)| EventBuilder::new(&reg, t).unwrap().at(Time(*ts)).build())
            .collect();
        (reg, q, evs)
    }

    #[test]
    fn match_graph_builds_figure_6_shape() {
        let (_, q, evs) = setup();
        let g = MatchGraph::build(&q.alternatives[0], &evs, 100);
        assert_eq!(g.vertices.len(), 5);
        // b2 has one predecessor (a1); a4 has three (a1, b2, a3).
        let preds_of = |ev: usize| {
            let v = g.vertices.iter().position(|m| m.ev == ev).unwrap();
            g.preds[v].len()
        };
        assert_eq!(preds_of(1), 1);
        assert_eq!(preds_of(3), 3);
    }

    #[test]
    fn enumeration_counts_example_1() {
        let (_, q, evs) = setup();
        let g = MatchGraph::build(&q.alternatives[0], &evs, 100);
        let mut count = 0u64;
        let mut budget = u64::MAX;
        let ok = g.for_each_trend(0, &q.window, &mut budget, &mut |_| count += 1);
        assert!(ok);
        assert_eq!(count, 11);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let (_, q, evs) = setup();
        let g = MatchGraph::build(&q.alternatives[0], &evs, 100);
        let mut count = 0u64;
        let mut budget = 5;
        let ok = g.for_each_trend(0, &q.window, &mut budget, &mut |_| count += 1);
        assert!(!ok);
        assert_eq!(count, 5);
    }

    #[test]
    fn length_stratified_finds_same_trends() {
        let (_, q, evs) = setup();
        let g = MatchGraph::build(&q.alternatives[0], &evs, 100);
        let mut count = 0u64;
        let mut budget = u64::MAX;
        let ok = enumerate_length_stratified(&g, 0, &q.window, &mut budget, &mut |_| count += 1);
        assert!(ok);
        assert_eq!(count, 11);
    }

    #[test]
    fn partitioning_broadcasts_subkey_events() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let pos = |t: u64, v: i64, s: i64| {
            EventBuilder::new(&reg, "Position")
                .unwrap()
                .at(Time(t))
                .set("vehicle", v)
                .unwrap()
                .set("segment", s)
                .unwrap()
                .build()
        };
        let acc = |t: u64, s: i64| {
            EventBuilder::new(&reg, "Accident")
                .unwrap()
                .at(Time(t))
                .set("segment", s)
                .unwrap()
                .build()
        };
        let events = vec![pos(1, 1, 1), pos(2, 2, 1), pos(3, 9, 2), acc(4, 1)];
        let parts = PartitionedStream::build(&q, &reg, &events);
        assert_eq!(parts.partitions.len(), 3);
        // Accident(segment=1) lands in both segment-1 partitions, not in 2.
        let with_acc = parts
            .partitions
            .iter()
            .filter(|(_, evs)| {
                evs.iter()
                    .any(|e| e.type_id == reg.type_id("Accident").unwrap())
            })
            .count();
        assert_eq!(with_acc, 2);
    }

    #[test]
    fn per_trend_aggregation_matches_figure_12() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["attr"]).unwrap();
        reg.register_type("B", &["attr"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr) \
             PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let mk = |t: &str, ts: u64, a: f64| {
            EventBuilder::new(&reg, t)
                .unwrap()
                .at(Time(ts))
                .set("attr", a)
                .unwrap()
                .build()
        };
        let evs = vec![
            mk("A", 1, 5.0),
            mk("B", 2, 0.0),
            mk("A", 3, 6.0),
            mk("A", 4, 4.0),
            mk("B", 7, 0.0),
        ];
        let run = run_two_step(&q, &reg, &evs, u64::MAX, |_, _, _| 0, false);
        assert!(run.completed);
        assert_eq!(run.trends, 11);
        let v: Vec<f64> = run.rows[0].values.iter().map(|x| x.to_f64()).collect();
        assert_eq!(v, vec![11.0, 20.0, 4.0, 6.0, 100.0, 5.0]);
    }
}
