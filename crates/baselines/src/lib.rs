//! # greta-baselines
//!
//! The state-of-the-art **two-step** competitors evaluated against GRETA in
//! paper §10, plus a brute-force oracle:
//!
//! * [`oracle`] — reference implementation: enumerate every trend, aggregate
//!   per trend. Ground truth for correctness tests and property checks.
//! * [`sase`] — SASE-style \[31\]: events in stacks with predecessor
//!   pointers; at window close a DFS re-constructs every trend, which is
//!   then aggregated. Low memory, exponential time.
//! * [`cet`] — CET-style \[24\]: shares common sub-trends by materializing a
//!   node per (sub-)trend; aggregation happens upon construction. Faster
//!   than SASE, exponential memory.
//! * [`flink`] — Flink-style \[4\]: the Kleene query is flattened into a set
//!   of fixed-length sequence queries (lengths 1..L); each is evaluated
//!   separately, multiplying the workload.
//!
//! All engines consume the same [`greta_query::CompiledQuery`] and produce
//! the same result rows as `greta_core::GretaEngine`, so any divergence is
//! a bug — the integration suite and proptests compare them exhaustively.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aseq;
pub mod cet;
pub mod common;
pub mod flink;
pub mod oracle;
pub mod sase;

pub use aseq::{AseqEngine, AseqUnsupported};
pub use cet::CetEngine;
pub use common::{MatchGraph, PartitionedStream, TrendStats, TwoStepRun};
pub use flink::FlinkEngine;
pub use oracle::oracle_run;
pub use sase::SaseEngine;
