//! SASE-style baseline (paper §10.1, \[31\]).
//!
//! SASE keeps each event in a stack with pointers to its previous events
//! and, per window, runs a DFS over those pointers to construct every
//! trend, aggregating each as it is completed. The DFS stores only the
//! trend currently under construction, so memory is the pointer graph plus
//! one (unbounded-length) path — low memory, exponential time, and each
//! sub-trend is re-walked for every longer trend containing it.

use crate::common::{run_two_step, TwoStepRun};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};

/// The SASE-style two-step engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaseEngine;

impl SaseEngine {
    /// Run on a batch. `budget` caps the number of constructed trends
    /// (`u64::MAX` = unlimited); exhaustion reports `completed = false`,
    /// mirroring the paper's "fails to terminate".
    pub fn run(
        query: &CompiledQuery,
        registry: &SchemaRegistry,
        events: &[Event],
        budget: u64,
    ) -> TwoStepRun {
        run_two_step(
            query,
            registry,
            events,
            budget,
            // Extra state: the in-flight trend path (bounded by the number
            // of vertices, i.e. the longest possible trend).
            |graph, _, _| graph.vertices.len() * std::mem::size_of::<usize>() * 2,
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{EventBuilder, Time};

    fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        reg.register_type("B", &["x"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let evs: Vec<Event> = [
            ("A", 1u64),
            ("B", 2),
            ("A", 3),
            ("A", 4),
            ("B", 7),
            ("A", 8),
            ("B", 9),
        ]
        .iter()
        .map(|(t, ts)| EventBuilder::new(&reg, t).unwrap().at(Time(*ts)).build())
        .collect();
        (reg, q, evs)
    }

    #[test]
    fn sase_counts_figure_6() {
        let (reg, q, evs) = setup();
        let run = SaseEngine::run(&q, &reg, &evs, u64::MAX);
        assert!(run.completed);
        assert_eq!(run.trends, 43);
        assert_eq!(run.rows[0].values[0].to_f64(), 43.0);
        assert!(run.peak_bytes > 0);
    }

    #[test]
    fn sase_respects_budget() {
        let (reg, q, evs) = setup();
        let run = SaseEngine::run(&q, &reg, &evs, 10);
        assert!(!run.completed);
        assert!(run.trends <= 10);
    }
}
