//! Flink-style baseline (paper §10.1, \[4\]).
//!
//! Industrial streaming systems without native Kleene support evaluate a
//! Kleene query as a *set* of fixed-length sequence queries covering every
//! trend length 1..L. This engine models that strategy: per window, it
//! re-walks the match graph once per length with an exact depth bound
//! (multiplying the workload by L) and — being a two-step approach — pays
//! for materializing every sequence before aggregation (we account the
//! bytes of all constructed sequences as peak state).

use crate::common::{run_two_step, TwoStepRun};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};

/// The Flink-style flattened-sequences engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlinkEngine;

impl FlinkEngine {
    /// Run on a batch with a trend budget (see [`TwoStepRun`]).
    pub fn run(
        query: &CompiledQuery,
        registry: &SchemaRegistry,
        events: &[Event],
        budget: u64,
    ) -> TwoStepRun {
        run_two_step(
            query,
            registry,
            events,
            budget,
            // Extra state: all materialized sequences (Σ lengths × ref size).
            |_, _, sum_len| sum_len as usize * std::mem::size_of::<usize>() * 2,
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{EventBuilder, Time};

    #[test]
    fn flink_matches_oracle_counts() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        reg.register_type("B", &["x"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let evs: Vec<Event> = [("A", 1u64), ("B", 2), ("A", 3), ("A", 4), ("B", 7)]
            .iter()
            .map(|(t, ts)| EventBuilder::new(&reg, t).unwrap().at(Time(*ts)).build())
            .collect();
        let run = FlinkEngine::run(&q, &reg, &evs, u64::MAX);
        assert!(run.completed);
        assert_eq!(run.trends, 11);
        assert_eq!(run.rows[0].values[0].to_f64(), 11.0);
        // Flink's modeled memory grows with total sequence volume.
        assert!(run.peak_bytes > 0);
    }
}
