//! CET-style baseline (paper §10.1, \[24\]).
//!
//! CET optimizes trend **construction** by storing and reusing common
//! sub-trends instead of recomputing them: every (sub-)trend becomes a node
//! pointing at its parent sub-trend (a persistent cons-list), so extending
//! n sub-trends by one event costs n node allocations instead of n path
//! re-walks. Aggregation happens upon construction: each node carries the
//! cumulative per-trend statistics of its prefix.
//!
//! The price is memory proportional to the number of sub-trends —
//! exponential — which is exactly the trade-off the paper measures
//! (≈2× faster than SASE, orders of magnitude more memory).

use crate::common::{PartitionedStream, TrendStats, TwoStepRun};
use greta_core::agg::{AggLayout, AggState};
use greta_core::grouping::PartitionKey;
use greta_core::negation::{
    end_event_valid_at_close, insertion_dropped, predecessor_valid, DepMode, Dependency,
    InvalidationLog,
};
use greta_core::results::{render_aggregates, WindowResult};
use greta_core::window::{window_close_time, window_start_time, windows_of, WindowId};
use greta_query::{CompiledQuery, StateId};
use greta_types::{Event, SchemaRegistry, Time};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// One shared sub-trend node (persistent list cell).
struct CNode {
    /// Parent sub-trend (`None` for a trend of length 1). Kept alive so
    /// sharing is real: dropping it would deallocate shared prefixes.
    #[allow(dead_code)]
    parent: Option<Rc<CNode>>,
    /// Cumulative statistics of the prefix ending here.
    stats: TrendStats,
}

/// Estimated bytes per CET node: parent pointer + refcounts + stats payload.
pub const NODE_BYTES: usize = 64;

/// A vertex of the CET construction: the event plus the shared sub-trends
/// ending at it.
struct CVertex {
    time: Time,
    event: Event,
    latest_start: Time,
    nodes: Vec<Rc<CNode>>,
}

/// The CET-style shared-trend engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct CetEngine;

impl CetEngine {
    /// Run on a batch with a node budget (`u64::MAX` = unlimited).
    pub fn run(
        query: &CompiledQuery,
        registry: &SchemaRegistry,
        events: &[Event],
        budget: u64,
    ) -> TwoStepRun {
        let layout = AggLayout::new(&query.aggregates);
        let n_group = query.group_by.len();
        let parts = PartitionedStream::build(query, registry, events);
        let mut results: HashMap<(WindowId, PartitionKey), AggState<f64>> = HashMap::new();
        let mut nodes_total = 0u64;
        let mut trends = 0u64;
        let mut peak = 0usize;
        let mut completed = true;

        'outer: for (key, evs) in &parts.partitions {
            let group = key.group_prefix(n_group);
            let mut wids: BTreeSet<WindowId> = BTreeSet::new();
            for e in evs {
                wids.extend(windows_of(e.time, &query.window));
            }
            for plan in &query.alternatives {
                for &wid in &wids {
                    let acc = results
                        .entry((wid, group.clone()))
                        .or_insert_with(|| AggState::zero(&layout));
                    match build_window_trends(
                        plan,
                        evs,
                        query.window.within,
                        window_start_time(wid, &query.window),
                        window_close_time(wid, &query.window),
                        &layout,
                        budget.saturating_sub(nodes_total),
                        acc,
                    ) {
                        Some((nodes, ts, bytes)) => {
                            nodes_total += nodes;
                            trends += ts;
                            peak = peak.max(bytes);
                        }
                        None => {
                            completed = false;
                            break 'outer;
                        }
                    }
                }
            }
        }

        let mut rows: Vec<WindowResult<f64>> = results
            .into_iter()
            .filter(|(_, st)| st.count != 0.0)
            .map(|((wid, group), st)| WindowResult {
                window: wid,
                group,
                values: render_aggregates(&st, &query.aggregates, &layout),
            })
            .collect();
        rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        TwoStepRun {
            rows,
            completed,
            trends,
            peak_bytes: peak,
        }
    }
}

/// Build all shared sub-trend nodes of the root graph for one window and
/// fold finished trends into `acc`. Returns `(nodes, trends, bytes)` or
/// `None` when the node budget was exhausted.
#[allow(clippy::too_many_arguments)]
fn build_window_trends(
    plan: &greta_query::compile::AltPlan,
    events: &[Event],
    within: u64,
    ws: Time,
    we: Time,
    layout: &AggLayout,
    budget: u64,
    acc: &mut AggState<f64>,
) -> Option<(u64, u64, usize)> {
    let n_graphs = plan.graphs.len();
    let deps: Vec<Vec<Dependency>> = plan
        .graphs
        .iter()
        .map(|spec| {
            plan.graphs
                .iter()
                .filter(|g| g.parent == Some(spec.id))
                .map(|g| Dependency {
                    child: g.id,
                    mode: DepMode::of(g),
                })
                .collect()
        })
        .collect();
    let mut logs: Vec<InvalidationLog> = vec![InvalidationLog::default(); n_graphs];
    let mut by_state: HashMap<(usize, StateId), Vec<CVertex>> = HashMap::new();
    let mut node_count = 0u64;
    let mut trends = 0u64;
    // Root END nodes are folded only at window close: a trailing negation
    // (Case 2) may invalidate their END events after construction.
    let mut end_nodes: Vec<(Time, Rc<CNode>)> = Vec::new();

    for e in events {
        for (gi, spec) in plan.graphs.iter().enumerate() {
            {
                let log_of = |id: greta_query::compile::GraphId| logs.get(id.0 as usize);
                if insertion_dropped(&deps[gi], log_of, e.time) {
                    continue;
                }
            }
            // Root-graph trends are window-scoped; negative trends use the
            // same stream-global semantics as the GRETA engine.
            if gi == 0 && (e.time < ws || e.time >= we) {
                continue;
            }
            let states: Vec<StateId> = spec
                .state_types
                .iter()
                .filter(|(_, t)| *t == e.type_id)
                .map(|(s, _)| *s)
                .collect();
            for state in states {
                if !plan
                    .predicates
                    .vertex_preds(state)
                    .all(|p| p.expr.eval_bool(None, e))
                {
                    continue;
                }
                let is_start = spec.template.is_start(state);
                let is_end = spec.template.is_end(state);
                let mut new_nodes: Vec<Rc<CNode>> = Vec::new();
                let mut latest_start = if is_start { e.time } else { Time::ZERO };
                if is_start {
                    new_nodes.push(Rc::new(CNode {
                        parent: None,
                        stats: TrendStats::single(e, layout),
                    }));
                }
                for p_state in spec.template.predecessors(state) {
                    let Some(cands) = by_state.get(&(gi, p_state)) else {
                        continue;
                    };
                    let log_of = |id: greta_query::compile::GraphId| logs.get(id.0 as usize);
                    for pv in cands {
                        if pv.time >= e.time || pv.time.ticks() + within <= e.time.ticks() {
                            continue;
                        }
                        if !predecessor_valid(&deps[gi], log_of, p_state, state, pv.time, e.time) {
                            continue;
                        }
                        if !plan
                            .predicates
                            .edge_preds(p_state, state)
                            .all(|ep| ep.expr.eval_bool(Some(&pv.event), e))
                        {
                            continue;
                        }
                        latest_start = latest_start.max(pv.latest_start);
                        for t in &pv.nodes {
                            new_nodes.push(Rc::new(CNode {
                                parent: Some(Rc::clone(t)),
                                stats: t.stats.extend(e, layout),
                            }));
                        }
                    }
                }
                if new_nodes.is_empty() {
                    continue;
                }
                node_count += new_nodes.len() as u64;
                if node_count > budget {
                    return None;
                }
                if is_end && gi == 0 {
                    for n in &new_nodes {
                        end_nodes.push((e.time, Rc::clone(n)));
                    }
                }
                if is_end && gi != 0 {
                    logs[gi].push(e.time, latest_start);
                }
                by_state.entry((gi, state)).or_default().push(CVertex {
                    time: e.time,
                    event: e.clone(),
                    latest_start,
                    nodes: new_nodes,
                });
            }
        }
    }
    // Aggregation upon construction, deferred for END validity (Case 2).
    let log_of = |id: greta_query::compile::GraphId| logs.get(id.0 as usize);
    for (t, n) in &end_nodes {
        if end_event_valid_at_close(&deps[0], log_of, *t, we) {
            trends += 1;
            n.stats.fold_into(acc);
        }
    }
    let bytes = node_count as usize * NODE_BYTES;
    Some((node_count, trends, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{EventBuilder, Time};

    fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        reg.register_type("B", &["x"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let evs: Vec<Event> = [
            ("A", 1u64),
            ("B", 2),
            ("A", 3),
            ("A", 4),
            ("B", 7),
            ("A", 8),
            ("B", 9),
        ]
        .iter()
        .map(|(t, ts)| EventBuilder::new(&reg, t).unwrap().at(Time(*ts)).build())
        .collect();
        (reg, q, evs)
    }

    #[test]
    fn cet_counts_figure_6() {
        let (reg, q, evs) = setup();
        let run = CetEngine::run(&q, &reg, &evs, u64::MAX);
        assert!(run.completed);
        assert_eq!(run.rows[0].values[0].to_f64(), 43.0);
        // Memory proportional to sub-trend count, far above the raw events.
        assert!(run.peak_bytes >= 43 * NODE_BYTES);
    }

    #[test]
    fn cet_respects_budget() {
        let (reg, q, evs) = setup();
        let run = CetEngine::run(&q, &reg, &evs, 10);
        assert!(!run.completed);
    }

    #[test]
    fn cet_aggregates_match_example_1() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["attr"]).unwrap();
        reg.register_type("B", &["attr"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr) \
             PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let mk = |t: &str, ts: u64, a: f64| {
            EventBuilder::new(&reg, t)
                .unwrap()
                .at(Time(ts))
                .set("attr", a)
                .unwrap()
                .build()
        };
        let evs = vec![
            mk("A", 1, 5.0),
            mk("B", 2, 0.0),
            mk("A", 3, 6.0),
            mk("A", 4, 4.0),
            mk("B", 7, 0.0),
        ];
        let run = CetEngine::run(&q, &reg, &evs, u64::MAX);
        let v: Vec<f64> = run.rows[0].values.iter().map(|x| x.to_f64()).collect();
        assert_eq!(v, vec![11.0, 20.0, 4.0, 6.0, 100.0, 5.0]);
    }
}
