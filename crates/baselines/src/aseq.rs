//! A-Seq-style baseline (paper §1/§11, \[25\]): *online aggregation of
//! fixed-length event sequences*.
//!
//! A-Seq is the only pre-GRETA system with incremental sequence
//! aggregation, but it is restricted to flat, fixed-length patterns such as
//! `SEQ(A, B, C)` with **no Kleene closure and no edge predicates**. Under
//! those restrictions the per-event graph vertex of GRETA collapses into a
//! single running aggregate per *pattern position*: when an event of
//! position `i` arrives, position `i`'s aggregate absorbs position
//! `i−1`'s (prefix counting) — O(L) state instead of O(n).
//!
//! This module exists for two reasons: it reproduces the related-work
//! landscape of the paper, and it is a sharp regression oracle — on the
//! queries it supports it must agree exactly with GRETA while using O(1)
//! memory per group/window.

use greta_core::agg::{AggLayout, AggState};
use greta_core::grouping::{KeyExtractor, PartitionKey};
use greta_core::results::{render_aggregates, WindowResult};
use greta_core::window::{window_close_time, windows_of, WindowId};
use greta_query::{CompiledQuery, StateId};
use greta_types::{Event, SchemaRegistry, Time, TypeId};
use std::collections::{BTreeMap, HashMap};

/// Why a query is outside A-Seq's supported fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AseqUnsupported {
    /// Pattern contains Kleene closure (trend length is unbounded).
    Kleene,
    /// Pattern contains negation.
    Negation,
    /// Query has edge predicates (A-Seq predicates are single-event only).
    EdgePredicates,
    /// Pattern desugars into several alternatives.
    Alternatives,
}

impl std::fmt::Display for AseqUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = match self {
            AseqUnsupported::Kleene => "A-Seq supports no Kleene closure (paper §11)",
            AseqUnsupported::Negation => "A-Seq supports no negation",
            AseqUnsupported::EdgePredicates => "A-Seq predicates are single-event only",
            AseqUnsupported::Alternatives => "A-Seq patterns are a single fixed sequence",
        };
        write!(f, "{m}")
    }
}

/// The A-Seq-style engine: O(L) running aggregates per (partition, window).
pub struct AseqEngine {
    query: CompiledQuery,
    layout: AggLayout,
    extractor: KeyExtractor,
    /// Pattern positions in sequence order: `(state, type)`.
    positions: Vec<(StateId, TypeId)>,
    /// `(partition, window)` → per-position running aggregates.
    state: HashMap<(PartitionKey, WindowId), Vec<AggState<f64>>>,
    /// Contributions of the current timestamp, applied once time advances
    /// (trend adjacency requires strictly increasing times, Def. 1).
    pending: Vec<((PartitionKey, WindowId), usize, AggState<f64>)>,
    pending_time: Time,
    /// Final aggregate per (window, group).
    results: BTreeMap<WindowId, HashMap<PartitionKey, AggState<f64>>>,
    emitted: Vec<WindowResult<f64>>,
    watermark: Time,
}

impl AseqEngine {
    /// Validate the query against A-Seq's fragment and build the engine.
    pub fn new(
        query: CompiledQuery,
        registry: &SchemaRegistry,
    ) -> Result<AseqEngine, AseqUnsupported> {
        if query.alternatives.len() != 1 {
            return Err(AseqUnsupported::Alternatives);
        }
        let alt = &query.alternatives[0];
        if alt.graphs.len() != 1 {
            return Err(AseqUnsupported::Negation);
        }
        if !alt.predicates.edges.is_empty() {
            return Err(AseqUnsupported::EdgePredicates);
        }
        let t = &alt.graphs[0].template;
        // Fixed-length: the template must be a simple chain (each state has
        // at most one predecessor, no loops).
        for s in &t.states {
            let preds = t.predecessors(s.occ);
            if preds.contains(&s.occ) || preds.len() > 1 {
                return Err(AseqUnsupported::Kleene);
            }
        }
        // Order positions start → end along SEQ transitions.
        let mut positions = vec![(t.start, alt.graphs[0].type_of(t.start))];
        let mut cur = t.start;
        while cur != t.end {
            let next = t
                .transitions
                .iter()
                .find(|(from, _, _)| *from == cur)
                .map(|(_, to, _)| *to)
                .ok_or(AseqUnsupported::Kleene)?;
            positions.push((next, alt.graphs[0].type_of(next)));
            cur = next;
        }
        let layout = AggLayout::new(&query.aggregates);
        let extractor = KeyExtractor::new(&query, registry);
        Ok(AseqEngine {
            query,
            layout,
            extractor,
            positions,
            state: HashMap::new(),
            pending: Vec::new(),
            pending_time: Time::ZERO,
            results: BTreeMap::new(),
            emitted: Vec::new(),
            watermark: Time::ZERO,
        })
    }

    fn flush_pending(&mut self) {
        for ((key, wid), pos, contrib) in self.pending.drain(..) {
            let states = self
                .state
                .entry((key, wid))
                .or_insert_with(|| vec![AggState::zero(&self.layout); self.positions.len()]);
            states[pos].merge(&contrib);
        }
    }

    /// Process one in-order event.
    pub fn process(&mut self, e: &Event) {
        if e.time > self.pending_time {
            self.flush_pending();
            self.pending_time = e.time;
        }
        self.watermark = self.watermark.max(e.time);
        self.close_due(e.time);
        let alt = &self.query.alternatives[0];
        let key = self.extractor.key_of(e);
        let n_group = self.query.group_by.len();
        for (pos, (state, ty)) in self.positions.iter().enumerate() {
            if *ty != e.type_id {
                continue;
            }
            if !alt
                .predicates
                .vertex_preds(*state)
                .all(|p| p.expr.eval_bool(None, e))
            {
                continue;
            }
            for wid in windows_of(e.time, &self.query.window) {
                // Prefix step: sequences ending at position `pos` via this
                // event = all prefixes accumulated at position pos−1 (or
                // one fresh sequence when pos == 0). Only strictly earlier
                // events are visible (same-timestamp contributions sit in
                // `pending`).
                let contrib = if pos == 0 {
                    let mut s = AggState::zero(&self.layout);
                    s.apply_own(e, true, &self.layout);
                    s
                } else {
                    let Some(states) = self.state.get(&(key.clone(), wid)) else {
                        continue;
                    };
                    let prev = states[pos - 1].clone();
                    if prev.count == 0.0 {
                        continue;
                    }
                    let mut s = prev;
                    // apply_own(…, false) adds counts_e/min/max/sum weighted
                    // by `count` — exactly the Theorem 9.1 step.
                    s.apply_own(e, false, &self.layout);
                    s
                };
                if pos == self.positions.len() - 1 {
                    let group = key.group_prefix(n_group);
                    self.results
                        .entry(wid)
                        .or_default()
                        .entry(group)
                        .or_insert_with(|| AggState::zero(&self.layout))
                        .merge(&contrib);
                }
                self.pending.push(((key.clone(), wid), pos, contrib));
            }
        }
    }

    fn close_due(&mut self, t: Time) {
        let wspec = self.query.window;
        while let Some((&wid, _)) = self.results.iter().next() {
            if window_close_time(wid, &wspec) > t {
                break;
            }
            let groups = self.results.remove(&wid).unwrap();
            let mut rows: Vec<WindowResult<f64>> = groups
                .into_iter()
                .filter(|(_, st)| st.count != 0.0)
                .map(|(group, st)| WindowResult {
                    window: wid,
                    group,
                    values: render_aggregates(&st, &self.query.aggregates, &self.layout),
                })
                .collect();
            rows.sort_by(|a, b| a.group.cmp(&b.group));
            self.emitted.extend(rows);
            self.state.retain(|(_, w), _| *w != wid);
        }
    }

    /// Flush all remaining windows and return every result.
    pub fn finish(&mut self) -> Vec<WindowResult<f64>> {
        self.flush_pending();
        self.close_due(Time::MAX);
        std::mem::take(&mut self.emitted)
    }

    /// Convenience batch API.
    pub fn run(&mut self, events: &[Event]) -> Vec<WindowResult<f64>> {
        for e in events {
            self.process(e);
        }
        self.finish()
    }

    /// Bytes of running state — O(positions × live windows × groups),
    /// independent of the number of events.
    pub fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|v| v.iter().map(AggState::heap_size).sum::<usize>() + 64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_core::GretaEngine;
    use greta_types::{EventBuilder, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        for t in ["A", "B", "C"] {
            reg.register_type(t, &["attr", "g"]).unwrap();
        }
        reg
    }

    fn ev(reg: &SchemaRegistry, ty: &str, t: u64, attr: f64, g: i64) -> Event {
        EventBuilder::new(reg, ty)
            .unwrap()
            .at(Time(t))
            .set("attr", attr)
            .unwrap()
            .set("g", g)
            .unwrap()
            .build()
    }

    fn compare_with_greta(text: &str, events: &[Event], reg: &SchemaRegistry) {
        let q = CompiledQuery::parse(text, reg).unwrap();
        let mut aseq = AseqEngine::new(q.clone(), reg).unwrap();
        let a = aseq.run(events);
        let mut greta = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
        let mut g = greta.run(events).unwrap();
        g.sort_by(|x, y| x.window.cmp(&y.window).then_with(|| x.group.cmp(&y.group)));
        let mut a = a;
        a.sort_by(|x, y| x.window.cmp(&y.window).then_with(|| x.group.cmp(&y.group)));
        assert_eq!(a.len(), g.len(), "{text}");
        for (x, y) in a.iter().zip(&g) {
            assert_eq!(x.window, y.window);
            assert_eq!(x.group, y.group);
            for (u, v) in x.values.iter().zip(&y.values) {
                let (u, v) = (u.to_f64(), v.to_f64());
                if u.is_nan() && v.is_nan() {
                    continue;
                }
                assert!((u - v).abs() < 1e-9, "{text}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn prefix_counting_matches_greta_on_fixed_sequences() {
        let reg = registry();
        let events: Vec<Event> = (0..30u64)
            .map(|t| {
                let ty = ["A", "B", "C"][(t % 3) as usize];
                ev(&reg, ty, t, ((t * 7) % 5) as f64, (t % 2) as i64)
            })
            .collect();
        for text in [
            "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 100 SLIDE 100",
            "RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 100 SLIDE 100",
            "RETURN COUNT(*), SUM(A.attr), MIN(B.attr), MAX(B.attr), AVG(A.attr) \
             PATTERN SEQ(A, B, C) WITHIN 100 SLIDE 100",
            "RETURN g, COUNT(*) PATTERN SEQ(A, B) GROUP-BY g WITHIN 100 SLIDE 100",
            "RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 12 SLIDE 4",
            "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.attr > 1 WITHIN 100 SLIDE 100",
        ] {
            compare_with_greta(text, &events, &reg);
        }
    }

    #[test]
    fn constant_memory_in_stream_length() {
        let reg = registry();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 50 SLIDE 50", &reg)
            .unwrap();
        let mut engine = AseqEngine::new(q, &reg).unwrap();
        let mut peak_small = 0;
        for t in 0..100u64 {
            engine.process(&ev(&reg, ["A", "B"][(t % 2) as usize], t, 0.0, 0));
            peak_small = peak_small.max(engine.memory_bytes());
        }
        engine.finish();
        let q2 = CompiledQuery::parse("RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 50 SLIDE 50", &reg)
            .unwrap();
        let mut engine2 = AseqEngine::new(q2, &reg).unwrap();
        let mut peak_large = 0;
        for t in 0..10_000u64 {
            engine2.process(&ev(&reg, ["A", "B"][(t % 2) as usize], t, 0.0, 0));
            peak_large = peak_large.max(engine2.memory_bytes());
        }
        engine2.finish();
        // 100× more events, same per-window state.
        assert_eq!(peak_small, peak_large);
    }

    #[test]
    fn same_timestamp_events_are_not_adjacent() {
        // A and B at the same tick must not form a sequence (Def. 1 needs
        // strictly increasing times) — in both engines.
        let reg = registry();
        let events = vec![
            ev(&reg, "A", 1, 0.0, 0),
            ev(&reg, "B", 1, 0.0, 0),
            ev(&reg, "B", 2, 0.0, 0),
        ];
        compare_with_greta(
            "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 100 SLIDE 100",
            &events,
            &reg,
        );
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let mut aseq = AseqEngine::new(q, &reg).unwrap();
        let rows = aseq.run(&events);
        assert_eq!(rows[0].values[0].to_f64(), 1.0); // only (a1, b2)
    }

    #[test]
    fn rejects_kleene_negation_and_edge_predicates() {
        let reg = registry();
        let q = |s: &str| CompiledQuery::parse(s, &reg).unwrap();
        assert_eq!(
            AseqEngine::new(q("RETURN COUNT(*) PATTERN A+ WITHIN 1 SLIDE 1"), &reg).err(),
            Some(AseqUnsupported::Kleene)
        );
        assert_eq!(
            AseqEngine::new(
                q("RETURN COUNT(*) PATTERN SEQ(A, NOT B, C) WITHIN 1 SLIDE 1"),
                &reg
            )
            .err(),
            Some(AseqUnsupported::Negation)
        );
        assert_eq!(
            AseqEngine::new(
                q("RETURN COUNT(*) PATTERN SEQ(A X, B Y) WHERE X.attr < NEXT(Y).attr WITHIN 1 SLIDE 1"),
                &reg
            )
            .err(),
            Some(AseqUnsupported::EdgePredicates)
        );
        assert_eq!(
            AseqEngine::new(
                q("RETURN COUNT(*) PATTERN SEQ(A?, B) WITHIN 1 SLIDE 1"),
                &reg
            )
            .err(),
            Some(AseqUnsupported::Alternatives)
        );
    }
}
