//! Brute-force reference implementation ("two-step" in its purest form):
//! enumerate every trend, aggregate each one. Exponential — use on small
//! inputs only. This is the ground truth that the GRETA engine and all
//! baselines are validated against in the integration and property tests.

use crate::common::run_two_step;
use greta_core::results::WindowResult;
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};

/// Run the query by full enumeration. Panics on budget exhaustion never —
/// the budget is unlimited; keep inputs small.
pub fn oracle_run(
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    events: &[Event],
) -> Vec<WindowResult<f64>> {
    run_two_step(query, registry, events, u64::MAX, |_, _, _| 0, false).rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{EventBuilder, Time};

    #[test]
    fn oracle_counts_subsets_for_flat_kleene() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let evs: Vec<_> = (1..=5u64)
            .map(|t| EventBuilder::new(&reg, "A").unwrap().at(Time(t)).build())
            .collect();
        let rows = oracle_run(&q, &reg, &evs);
        assert_eq!(rows[0].values[0].to_f64(), 31.0); // 2^5 - 1
    }

    #[test]
    fn oracle_handles_windows() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 5", &reg).unwrap();
        let evs: Vec<_> = [1u64, 3, 8]
            .iter()
            .map(|t| EventBuilder::new(&reg, "A").unwrap().at(Time(*t)).build())
            .collect();
        let rows = oracle_run(&q, &reg, &evs);
        let mut by_window: Vec<(u64, f64)> = rows
            .iter()
            .map(|r| (r.window, r.values[0].to_f64()))
            .collect();
        by_window.sort_by_key(|x| x.0);
        assert_eq!(by_window, vec![(0, 7.0), (1, 1.0)]);
    }
}
