//! Errors raised by the data-model layer.

use std::fmt;

/// Schema/typing errors (unknown types, unknown attributes, arity mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// The named event type is not registered.
    UnknownType(String),
    /// The named attribute does not exist on the given event type.
    UnknownAttr {
        /// Event type name.
        ty: String,
        /// Attribute name that failed to resolve.
        attr: String,
    },
    /// An event was built with the wrong number of attribute values.
    ArityMismatch {
        /// Event type name.
        ty: String,
        /// Number of attributes declared by the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// An event type name was registered twice with different schemas.
    DuplicateType(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownType(t) => write!(f, "unknown event type `{t}`"),
            TypeError::UnknownAttr { ty, attr } => {
                write!(f, "event type `{ty}` has no attribute `{attr}`")
            }
            TypeError::ArityMismatch { ty, expected, got } => write!(
                f,
                "event of type `{ty}` built with {got} attribute values, schema declares {expected}"
            ),
            TypeError::DuplicateType(t) => {
                write!(
                    f,
                    "event type `{t}` registered twice with different schemas"
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = TypeError::UnknownAttr {
            ty: "Stock".into(),
            attr: "pricee".into(),
        };
        assert!(e.to_string().contains("Stock"));
        assert!(e.to_string().contains("pricee"));
        let e = TypeError::ArityMismatch {
            ty: "Stock".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
    }
}
