//! Attribute values carried by events.
//!
//! Queries compare attributes with arithmetic and relational operators
//! (paper Fig. 2), so values expose total numeric coercion ([`Value::as_f64`])
//! plus exact equality for partitioning (equivalence predicates and
//! `GROUP-BY` hash on [`Value`] directly).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed attribute value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer (ids, volumes, positions).
    Int(i64),
    /// 64-bit float (prices, speeds, loads). NaN is normalized away by
    /// constructors in this crate; comparisons treat NaN as smallest.
    Float(f64),
    /// Interned string (company names, sectors).
    Str(Arc<str>),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Coerce to `f64` for numeric comparison/arithmetic.
    /// Strings coerce to NaN→0.0 only through [`Value::as_f64_opt`] failing;
    /// use that method when failure must be observable.
    #[inline]
    pub fn as_f64(&self) -> f64 {
        self.as_f64_opt().unwrap_or(f64::NAN)
    }

    /// Numeric view of the value, `None` for strings.
    #[inline]
    pub fn as_f64_opt(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) => None,
        }
    }

    /// Integer view, `None` for non-integers.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, `None` for non-strings.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total order used by predicate evaluation: numerics compare by value
    /// (Int/Float/Bool interoperate), strings compare lexicographically,
    /// numerics sort before strings.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.as_f64_opt(), other.as_f64_opt()) {
            (Some(a), Some(b)) => {
                // Normalize -0.0 so it equals 0.0 (consistent with `Hash`).
                let a = if a == 0.0 { 0.0 } else { a };
                let b = if b == 0.0 { 0.0 } else { b };
                a.total_cmp(&b)
            }
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => self
                .as_str()
                .unwrap_or("")
                .cmp(other.as_str().unwrap_or("")),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `eq`: 2i64 == 2.0f64, so hash numerics via bits of
        // the canonical f64.
        match self.as_f64_opt() {
            Some(f) => {
                state.write_u8(0);
                // Normalize -0.0 to 0.0 so equal values hash equally.
                let f = if f == 0.0 { 0.0 } else { f };
                state.write_u64(f.to_bits());
            }
            None => {
                state.write_u8(1);
                self.as_str().unwrap_or("").hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn strings_sort_after_numbers() {
        use std::cmp::Ordering;
        assert_eq!(
            Value::from("abc").total_cmp(&Value::Int(999)),
            Ordering::Greater
        );
        assert_eq!(
            Value::from("a").total_cmp(&Value::from("b")),
            Ordering::Less
        );
        assert_eq!(Value::from("x"), Value::from("x"));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_f64(), 1.0);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Float(7.0).as_i64(), None);
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert!(Value::from("s").as_f64().is_nan());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("IBM").to_string(), "IBM");
    }
}
