//! Application time (paper §2).
//!
//! The paper models time as a linearly ordered set of non-negative rational
//! time points. We represent time as unsigned integer *ticks*; generators
//! choose the tick granularity (seconds in the paper's data sets). Integer
//! ticks keep ordering exact and make window arithmetic (`WITHIN`/`SLIDE`)
//! overflow-free and total.

use std::fmt;
use std::ops::{Add, Sub};

/// A discrete application time stamp (tick count since stream start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The smallest representable time stamp.
    pub const ZERO: Time = Time(0);
    /// The largest representable time stamp.
    pub const MAX: Time = Time(u64::MAX);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in ticks.
    #[inline]
    pub fn saturating_add(self, d: u64) -> Time {
        Time(self.0.saturating_add(d))
    }

    /// Saturating subtraction of a duration in ticks.
    #[inline]
    pub fn saturating_sub(self, d: u64) -> Time {
        Time(self.0.saturating_sub(d))
    }
}

impl From<u64> for Time {
    #[inline]
    fn from(t: u64) -> Self {
        Time(t)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: u64) -> Time {
        Time(self.0 + d)
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    #[inline]
    fn sub(self, other: Time) -> u64 {
        self.0 - other.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_matches_ticks() {
        assert!(Time(1) < Time(2));
        assert!(Time(2) == Time(2));
        assert!(Time(3) > Time(2));
        assert_eq!(Time::ZERO, Time(0));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Time(5) + 3, Time(8));
        assert_eq!(Time(5) - Time(3), 2);
        assert_eq!(Time::MAX.saturating_add(1), Time::MAX);
        assert_eq!(Time(1).saturating_sub(5), Time::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Time(42).to_string(), "t42");
    }
}
