//! Event streams (paper §2: "events are sent by event producers on an event
//! stream"; arrival is in-order by time stamps).

use crate::event::Event;
use crate::time::Time;

/// An in-order source of events. The GRETA runtime and all baselines consume
/// this trait so workload generators can stream lazily without materializing.
pub trait EventStream {
    /// Next event, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<Event>;

    /// Drain all remaining events into a vector.
    fn collect_events(mut self) -> Vec<Event>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(e) = self.next_event() {
            out.push(e);
        }
        out
    }
}

/// A materialized stream backed by a vector (test fixtures, replays).
#[derive(Debug, Clone, Default)]
pub struct VecStream {
    events: std::vec::IntoIter<Event>,
}

impl VecStream {
    /// Wrap a vector of events. Debug builds assert in-order time stamps.
    pub fn new(events: Vec<Event>) -> Self {
        debug_assert!(
            check_in_order(&events),
            "VecStream requires in-order events"
        );
        VecStream {
            events: events.into_iter(),
        }
    }
}

impl EventStream for VecStream {
    fn next_event(&mut self) -> Option<Event> {
        self.events.next()
    }
}

impl Iterator for VecStream {
    type Item = Event;
    fn next(&mut self) -> Option<Event> {
        self.next_event()
    }
}

/// True when `events` is non-decreasing by time stamp (paper §2 assumes
/// in-order arrival; ties are allowed and handled by the stream-transaction
/// scheduler of §7).
pub fn check_in_order(events: &[Event]) -> bool {
    events.windows(2).all(|w| w[0].time <= w[1].time)
}

/// Merge several in-order streams into one in-order stream (k-way merge,
/// stable within equal time stamps by source order). Used by workload
/// generators that synthesize independent sources.
pub fn merge_in_order(sources: Vec<Vec<Event>>) -> Vec<Event> {
    let total: usize = sources.iter().map(Vec::len).sum();
    let mut idx = vec![0usize; sources.len()];
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, Time)> = None;
        for (s, src) in sources.iter().enumerate() {
            if let Some(e) = src.get(idx[s]) {
                match best {
                    Some((_, t)) if t <= e.time => {}
                    _ => best = Some((s, e.time)),
                }
            }
        }
        match best {
            Some((s, _)) => {
                out.push(sources[s][idx[s]].clone());
                idx[s] += 1;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaRegistry;
    use crate::Event;

    fn ev(reg: &SchemaRegistry, t: u64) -> Event {
        Event::new_unchecked(reg.type_id("A").unwrap(), Time(t), vec![])
    }

    fn reg() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.register_type("A", &[]).unwrap();
        r
    }

    #[test]
    fn vec_stream_drains_in_order() {
        let r = reg();
        let evs = vec![ev(&r, 1), ev(&r, 2), ev(&r, 2), ev(&r, 5)];
        let s = VecStream::new(evs.clone());
        assert_eq!(s.collect_events(), evs);
    }

    #[test]
    fn in_order_check() {
        let r = reg();
        assert!(check_in_order(&[ev(&r, 1), ev(&r, 1), ev(&r, 3)]));
        assert!(!check_in_order(&[ev(&r, 2), ev(&r, 1)]));
        assert!(check_in_order(&[]));
    }

    #[test]
    fn merge_preserves_order_and_stability() {
        let r = reg();
        let merged = merge_in_order(vec![
            vec![ev(&r, 1), ev(&r, 4)],
            vec![ev(&r, 2), ev(&r, 4)],
            vec![],
        ]);
        let times: Vec<u64> = merged.iter().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 2, 4, 4]);
    }

    #[test]
    fn iterator_impl() {
        let r = reg();
        let s = VecStream::new(vec![ev(&r, 1), ev(&r, 2)]);
        assert_eq!(s.count(), 2);
    }
}
