//! # greta-types
//!
//! Data model for the GRETA event trend aggregation system (paper §2):
//!
//! * [`Time`] — application time stamps from a linearly ordered domain.
//! * [`Value`] — dynamically typed attribute values carried by events.
//! * [`Schema`] / [`SchemaRegistry`] — event types and their attributes,
//!   interned to small integer ids for cheap comparisons.
//! * [`Event`] — a time-stamped, typed tuple of attribute values.
//! * [`stream`] — in-order event streams and helpers.
//!
//! All higher layers (query compilation, the GRETA runtime, the two-step
//! baselines and the workload generators) are built on this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod event;
pub mod schema;
pub mod stream;
pub mod time;
pub mod value;

pub use codec::{CodecError, GroupStats, Reader};
pub use error::TypeError;
pub use event::{shared_heap_size, Event, EventBuilder, EventRef};
pub use schema::{AttrId, Schema, SchemaRegistry, TypeId};
pub use stream::{check_in_order, EventStream, VecStream};
pub use time::Time;
pub use value::Value;
