//! Events: time-stamped, typed tuples of attribute values (paper §2).

use crate::schema::{AttrId, Schema, SchemaRegistry, TypeId};
use crate::time::Time;
use crate::value::Value;
use crate::TypeError;
use std::fmt;
use std::sync::Arc;

/// A shared, immutable handle to an [`Event`].
///
/// The runtime allocates an event **once** at ingestion and shares it by
/// reference everywhere after: the reorder buffer, shard frames, broadcast
/// fan-out, and graph vertices all hold `EventRef`s, so a broadcast to N
/// shards is N pointer clones instead of N deep copies. `EventRef` derefs
/// to [`Event`], so read-side code is unchanged.
pub type EventRef = Arc<Event>;

/// Heap bytes of a shared event, amortized over its current holders:
/// `heap_size() / strong_count`, so summing over every holder accounts the
/// payload approximately once instead of once per referencing shard or
/// vertex (the §10.1 memory metric under `Arc<Event>` sharing).
pub fn shared_heap_size(e: &EventRef) -> usize {
    std::mem::size_of::<EventRef>() + e.heap_size() / Arc::strong_count(e).max(1)
}

/// A primitive event on the stream.
///
/// Events are immutable once built; the GRETA runtime stores each event at
/// most once per template state (paper §4.2: "each event is stored once").
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Occurrence time assigned by the event source.
    pub time: Time,
    /// Interned event type.
    pub type_id: TypeId,
    /// Attribute values in schema order.
    pub attrs: Box<[Value]>,
}

impl Event {
    /// Build an event, checking arity against the schema.
    pub fn new(
        registry: &SchemaRegistry,
        type_id: TypeId,
        time: Time,
        attrs: Vec<Value>,
    ) -> Result<Event, TypeError> {
        let schema = registry.schema(type_id);
        if schema.attributes.len() != attrs.len() {
            return Err(TypeError::ArityMismatch {
                ty: schema.name.clone(),
                expected: schema.attributes.len(),
                got: attrs.len(),
            });
        }
        Ok(Event {
            time,
            type_id,
            attrs: attrs.into_boxed_slice(),
        })
    }

    /// Build an event without schema validation (hot path in generators).
    #[inline]
    pub fn new_unchecked(type_id: TypeId, time: Time, attrs: Vec<Value>) -> Event {
        Event {
            time,
            type_id,
            attrs: attrs.into_boxed_slice(),
        }
    }

    /// Move this event behind a shared [`EventRef`] (the one allocation of
    /// the zero-copy event plane).
    #[inline]
    pub fn into_ref(self) -> EventRef {
        Arc::new(self)
    }

    /// Attribute value by index.
    #[inline]
    pub fn attr(&self, id: AttrId) -> &Value {
        &self.attrs[id.0 as usize]
    }

    /// Attribute value by name, resolved against `schema`.
    pub fn attr_by_name<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        schema.attr(name).map(|a| self.attr(a))
    }

    /// Heap + inline size of this event in bytes (used by the memory
    /// accounting of §10.1's *memory* metric).
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Event>()
            + self.attrs.len() * std::mem::size_of::<Value>()
            + self
                .attrs
                .iter()
                .map(|v| match v {
                    Value::Str(s) => s.len(),
                    _ => 0,
                })
                .sum::<usize>()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e[{} @{}](", self.type_id.0, self.time)?;
        for (i, v) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Fluent builder for events, resolving names through a [`SchemaRegistry`].
///
/// ```
/// use greta_types::{SchemaRegistry, EventBuilder, Time};
/// let mut reg = SchemaRegistry::new();
/// reg.register_type("Stock", &["price", "company"]).unwrap();
/// let e = EventBuilder::new(&reg, "Stock").unwrap()
///     .at(Time(3))
///     .set("price", 101.5).unwrap()
///     .set("company", "IBM").unwrap()
///     .build();
/// assert_eq!(e.time, Time(3));
/// ```
#[derive(Debug)]
pub struct EventBuilder<'r> {
    registry: &'r SchemaRegistry,
    type_id: TypeId,
    time: Time,
    attrs: Vec<Value>,
}

impl<'r> EventBuilder<'r> {
    /// Start building an event of the named type. All attributes default to
    /// `Int(0)` until set.
    pub fn new(registry: &'r SchemaRegistry, type_name: &str) -> Result<Self, TypeError> {
        let type_id = registry.type_id(type_name)?;
        let arity = registry.schema(type_id).attributes.len();
        Ok(EventBuilder {
            registry,
            type_id,
            time: Time::ZERO,
            attrs: vec![Value::Int(0); arity],
        })
    }

    /// Set the occurrence time.
    pub fn at(mut self, time: Time) -> Self {
        self.time = time;
        self
    }

    /// Set an attribute by name.
    pub fn set(mut self, attr: &str, value: impl Into<Value>) -> Result<Self, TypeError> {
        let schema = self.registry.schema(self.type_id);
        let aid = schema.attr(attr).ok_or_else(|| TypeError::UnknownAttr {
            ty: schema.name.clone(),
            attr: attr.to_string(),
        })?;
        self.attrs[aid.0 as usize] = value.into();
        Ok(self)
    }

    /// Finish, producing the event.
    pub fn build(self) -> Event {
        Event::new_unchecked(self.type_id, self.time, self.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.register_type("Stock", &["price", "company"]).unwrap();
        r
    }

    #[test]
    fn arity_checked() {
        let r = reg();
        let tid = r.type_id("Stock").unwrap();
        let err = Event::new(&r, tid, Time(1), vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            TypeError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        let ok = Event::new(&r, tid, Time(1), vec![Value::Int(1), "IBM".into()]).unwrap();
        assert_eq!(ok.attr(AttrId(1)).as_str(), Some("IBM"));
    }

    #[test]
    fn builder_resolves_names() {
        let r = reg();
        let e = EventBuilder::new(&r, "Stock")
            .unwrap()
            .at(Time(9))
            .set("price", 42.5)
            .unwrap()
            .build();
        assert_eq!(e.time, Time(9));
        assert_eq!(e.attr(AttrId(0)).as_f64(), 42.5);
        // Unset attribute defaults to 0.
        assert_eq!(e.attr(AttrId(1)), &Value::Int(0));
    }

    #[test]
    fn builder_rejects_unknown() {
        let r = reg();
        assert!(EventBuilder::new(&r, "Nope").is_err());
        let err = EventBuilder::new(&r, "Stock")
            .unwrap()
            .set("nope", 1)
            .unwrap_err();
        assert!(matches!(err, TypeError::UnknownAttr { .. }));
    }

    #[test]
    fn attr_by_name() {
        let r = reg();
        let e = EventBuilder::new(&r, "Stock")
            .unwrap()
            .set("price", 7.0)
            .unwrap()
            .build();
        let schema = r.schema(e.type_id);
        assert_eq!(e.attr_by_name(schema, "price").unwrap().as_f64(), 7.0);
        assert!(e.attr_by_name(schema, "x").is_none());
    }

    #[test]
    fn shared_heap_size_amortizes_over_holders() {
        let r = reg();
        let e = EventBuilder::new(&r, "Stock")
            .unwrap()
            .set("company", "A_RATHER_LONG_COMPANY_NAME")
            .unwrap()
            .build()
            .into_ref();
        let solo = shared_heap_size(&e);
        let _second = e.clone();
        let _third = e.clone();
        let shared = shared_heap_size(&e);
        // Three holders: each reports ~a third of the payload, so summing
        // over all holders counts the event about once.
        assert!(shared < solo);
        assert!(3 * shared <= solo + 3 * std::mem::size_of::<EventRef>());
    }

    #[test]
    fn heap_size_counts_strings() {
        let r = reg();
        let short = EventBuilder::new(&r, "Stock").unwrap().build();
        let long = EventBuilder::new(&r, "Stock")
            .unwrap()
            .set("company", "A_RATHER_LONG_COMPANY_NAME")
            .unwrap()
            .build();
        assert!(long.heap_size() > short.heap_size());
    }
}
