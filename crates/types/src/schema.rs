//! Event types and schemas (paper §2: "an event belongs to a particular
//! event type E ... described by a schema which specifies the set of event
//! attributes").
//!
//! Type and attribute names are interned into dense ids ([`TypeId`],
//! [`AttrId`]) at registration time so the hot path (graph construction,
//! predicate evaluation) never touches strings.

use crate::error::TypeError;
use std::collections::HashMap;

/// Dense id of a registered event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TypeId(pub u16);

/// Index of an attribute within its event type's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrId(pub u16);

/// Schema of one event type: its name and ordered attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Event type name as written in queries (e.g. `Stock`).
    pub name: String,
    /// Attribute names, in storage order.
    pub attributes: Vec<String>,
}

impl Schema {
    /// Build a schema from a type name and attribute names.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> Self {
        Schema {
            name: name.into(),
            attributes: attributes.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Look up an attribute index by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a == name)
            .map(|i| AttrId(i as u16))
    }
}

/// Registry interning event types for a stream / query session.
///
/// Registration is idempotent: re-registering an identical schema returns
/// the existing id; re-registering the same name with a *different* schema
/// is an error ([`TypeError::DuplicateType`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaRegistry {
    schemas: Vec<Schema>,
    by_name: HashMap<String, TypeId>,
}

impl SchemaRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a schema, returning its dense id.
    pub fn register(&mut self, schema: Schema) -> Result<TypeId, TypeError> {
        if let Some(&id) = self.by_name.get(&schema.name) {
            if self.schemas[id.0 as usize] == schema {
                return Ok(id);
            }
            return Err(TypeError::DuplicateType(schema.name));
        }
        let id = TypeId(self.schemas.len() as u16);
        self.by_name.insert(schema.name.clone(), id);
        self.schemas.push(schema);
        Ok(id)
    }

    /// Convenience: register `name` with the given attribute names.
    pub fn register_type(&mut self, name: &str, attrs: &[&str]) -> Result<TypeId, TypeError> {
        self.register(Schema::new(name, attrs))
    }

    /// Resolve a type name to its id.
    pub fn type_id(&self, name: &str) -> Result<TypeId, TypeError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TypeError::UnknownType(name.to_string()))
    }

    /// Schema of a registered type.
    pub fn schema(&self, id: TypeId) -> &Schema {
        &self.schemas[id.0 as usize]
    }

    /// Resolve `type.attr` by names.
    pub fn attr_id(&self, ty: &str, attr: &str) -> Result<(TypeId, AttrId), TypeError> {
        let tid = self.type_id(ty)?;
        let schema = self.schema(tid);
        let aid = schema.attr(attr).ok_or_else(|| TypeError::UnknownAttr {
            ty: ty.to_string(),
            attr: attr.to_string(),
        })?;
        Ok((tid, aid))
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when no types are registered.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterate over `(TypeId, &Schema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &Schema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (TypeId(i as u16), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = SchemaRegistry::new();
        let stock = reg
            .register_type("Stock", &["price", "volume", "company", "sector"])
            .unwrap();
        assert_eq!(reg.type_id("Stock").unwrap(), stock);
        assert_eq!(reg.schema(stock).name, "Stock");
        let (tid, aid) = reg.attr_id("Stock", "volume").unwrap();
        assert_eq!(tid, stock);
        assert_eq!(aid, AttrId(1));
    }

    #[test]
    fn idempotent_registration() {
        let mut reg = SchemaRegistry::new();
        let a = reg.register_type("A", &["x"]).unwrap();
        let b = reg.register_type("A", &["x"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn conflicting_registration_rejected() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        let err = reg.register_type("A", &["y"]).unwrap_err();
        assert_eq!(err, TypeError::DuplicateType("A".into()));
    }

    #[test]
    fn unknown_lookups_error() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x"]).unwrap();
        assert!(matches!(reg.type_id("B"), Err(TypeError::UnknownType(_))));
        assert!(matches!(
            reg.attr_id("A", "z"),
            Err(TypeError::UnknownAttr { .. })
        ));
    }

    #[test]
    fn dense_ids_in_registration_order() {
        let mut reg = SchemaRegistry::new();
        assert_eq!(reg.register_type("A", &[]).unwrap(), TypeId(0));
        assert_eq!(reg.register_type("B", &[]).unwrap(), TypeId(1));
        assert_eq!(reg.register_type("C", &[]).unwrap(), TypeId(2));
        let names: Vec<_> = reg.iter().map(|(_, s)| s.name.clone()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }
}
