//! Binary (de)serialization of the data model.
//!
//! The durability layer persists events and schemas in a compact
//! little-endian framing (the build environment is offline, so no serde —
//! mirroring the hand-rolled JSON codec in `greta-workloads::io`). The
//! format is deliberately simple: fixed-width scalars, `u32`
//! length-prefixed sequences, one tag byte per variant. Every `decode`
//! validates lengths and tags and fails with a [`CodecError`] instead of
//! panicking, so corrupted or truncated on-disk state surfaces as a clean
//! error.

use crate::event::Event;
use crate::schema::{Schema, SchemaRegistry, TypeId};
use crate::time::Time;
use crate::value::Value;
use std::fmt;

/// Decoding failure: truncated input, bad tag, or malformed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Cursor over an encoded byte slice; every read is bounds-checked.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "unexpected end of input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` stored as its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u32` length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a `u32` length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| CodecError(format!("invalid UTF-8 string: {e}")))
    }

    /// Read a sequence length, rejecting lengths that could not possibly
    /// fit in the remaining input (`min_item_bytes` per element).
    pub fn seq_len(&mut self, min_item_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(CodecError(format!(
                "sequence length {n} exceeds remaining input ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Append a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `u32` length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Append a `u32` length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BOOL: u8 = 3;

impl Value {
    /// Append the binary encoding of this value.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(TAG_INT);
                put_i64(out, *i);
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                put_f64(out, *f);
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                put_str(out, s);
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
        }
    }

    /// Decode a value encoded by [`Value::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Value, CodecError> {
        match r.u8()? {
            TAG_INT => Ok(Value::Int(r.i64()?)),
            TAG_FLOAT => Ok(Value::Float(r.f64()?)),
            TAG_STR => Ok(Value::from(r.str()?)),
            TAG_BOOL => Ok(Value::Bool(r.u8()? != 0)),
            t => Err(CodecError(format!("unknown Value tag {t}"))),
        }
    }
}

impl Event {
    /// Append the binary encoding of this event
    /// (`time, type_id, attr count, attrs`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.time.ticks());
        put_u16(out, self.type_id.0);
        put_u32(out, self.attrs.len() as u32);
        for v in self.attrs.iter() {
            v.encode(out);
        }
    }

    /// Decode an event encoded by [`Event::encode`]. Attribute arity is
    /// whatever was written — callers validating against a schema should
    /// use [`SchemaRegistry`] afterwards.
    pub fn decode(r: &mut Reader<'_>) -> Result<Event, CodecError> {
        let time = Time(r.u64()?);
        let type_id = TypeId(r.u16()?);
        let n = r.seq_len(1)?;
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            attrs.push(Value::decode(r)?);
        }
        Ok(Event::new_unchecked(type_id, time, attrs))
    }
}

impl Schema {
    /// Append the binary encoding of this schema.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        put_u32(out, self.attributes.len() as u32);
        for a in &self.attributes {
            put_str(out, a);
        }
    }

    /// Decode a schema encoded by [`Schema::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Schema, CodecError> {
        let name = r.str()?.to_string();
        let n = r.seq_len(4)?;
        let mut attributes = Vec::with_capacity(n);
        for _ in 0..n {
            attributes.push(r.str()?.to_string());
        }
        Ok(Schema { name, attributes })
    }
}

impl SchemaRegistry {
    /// Append the binary encoding of the whole registry, preserving the
    /// dense [`TypeId`] assignment.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        for (_, s) in self.iter() {
            s.encode(out);
        }
    }

    /// Decode a registry encoded by [`SchemaRegistry::encode`]. Ids are
    /// reassigned densely in encoding order, i.e. they round-trip.
    pub fn decode(r: &mut Reader<'_>) -> Result<SchemaRegistry, CodecError> {
        let n = r.seq_len(8)?;
        let mut reg = SchemaRegistry::new();
        for _ in 0..n {
            let s = Schema::decode(r)?;
            reg.register(s)
                .map_err(|e| CodecError(format!("duplicate schema in registry: {e}")))?;
        }
        Ok(reg)
    }
}

/// Per-group load counters (events routed to the group, graph vertices its
/// partitions hold). The executor's skew detector aggregates these per
/// shard; snapshots persist them so a recovered executor keeps detecting
/// skew from where the original run left off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupStats {
    /// Events routed to the group.
    pub events: u64,
    /// Graph vertices held by the group's partitions (reported at finish).
    pub vertices: u64,
}

impl GroupStats {
    /// Append the binary encoding (`events, vertices`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.events);
        put_u64(out, self.vertices);
    }

    /// Decode counters encoded by [`GroupStats::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<GroupStats, CodecError> {
        Ok(GroupStats {
            events: r.u64()?,
            vertices: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;

    #[test]
    fn value_roundtrip() {
        let vals = [
            Value::Int(-42),
            Value::Float(3.5),
            Value::Float(-0.0),
            Value::from("IBM"),
            Value::Bool(true),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            v.encode(&mut buf);
        }
        let mut r = Reader::new(&buf);
        for v in &vals {
            let got = Value::decode(&mut r).unwrap();
            // PartialEq on Value is numeric-coercing; check the bit pattern
            // for floats too.
            assert_eq!(&got, v);
            if let (Value::Float(a), Value::Float(b)) = (&got, v) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(r.is_empty());
    }

    #[test]
    fn event_roundtrip() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Stock", &["price", "company"]).unwrap();
        let e = EventBuilder::new(&reg, "Stock")
            .unwrap()
            .at(Time(99))
            .set("price", 101.5)
            .unwrap()
            .set("company", "IBM")
            .unwrap()
            .build();
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let got = Event::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got, e);
        assert_eq!(got.time, Time(99));
    }

    #[test]
    fn group_stats_roundtrip() {
        let s = GroupStats {
            events: 123_456,
            vertices: u64::MAX,
        };
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(GroupStats::decode(&mut r).unwrap(), s);
        assert!(r.is_empty());
        assert!(GroupStats::decode(&mut Reader::new(&buf[..9])).is_err());
    }

    #[test]
    fn registry_roundtrip_preserves_ids() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["x", "y"]).unwrap();
        reg.register_type("B", &[]).unwrap();
        let mut buf = Vec::new();
        reg.encode(&mut buf);
        let got = SchemaRegistry::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got.type_id("A").unwrap(), reg.type_id("A").unwrap());
        assert_eq!(got.type_id("B").unwrap(), reg.type_id("B").unwrap());
        assert_eq!(got.schema(got.type_id("A").unwrap()).attributes, ["x", "y"]);
    }

    #[test]
    fn truncated_input_is_a_clean_error() {
        let mut buf = Vec::new();
        Value::from("hello").encode(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(Value::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bogus_lengths_rejected() {
        // A sequence claiming u32::MAX elements must not allocate/panic.
        let mut buf = Vec::new();
        put_u64(&mut buf, 1); // time
        put_u16(&mut buf, 0); // type
        put_u32(&mut buf, u32::MAX); // absurd attr count
        assert!(Event::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let buf = [7u8, 0, 0, 0];
        assert!(Value::decode(&mut Reader::new(&buf)).is_err());
    }
}
