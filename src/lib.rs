//! # greta — umbrella crate
//!
//! Re-exports the full GRETA system (VLDB 2017: *Graph-based Real-time Event
//! Trend Aggregation*): the data model, the query compiler, the GRETA runtime,
//! the two-step baselines and the workload generators.
//!
//! Start with [`greta_core::GretaEngine`] or the quickstart example.

pub use greta_baselines as baselines;
pub use greta_bignum as bignum;
pub use greta_core as core;
pub use greta_durability as durability;
pub use greta_query as query;
pub use greta_server as server;
pub use greta_types as types;
pub use greta_workloads as workloads;
